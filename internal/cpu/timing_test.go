package cpu

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/isa"
)

// Golden timing microbenchmarks for the memory-dependence model: each
// pins one mechanism — store-to-load forwarding, load-chain
// serialization, the EPIC conservative load rule, and frame-versioned
// register readiness across calls — by comparing cycle counts of program
// pairs that differ only in that mechanism.

// cyclesFor compiles and simulates src, returning total cycles.
func cyclesFor(t *testing.T, src string, target *isa.Desc, level compiler.OptLevel, cfg Config) uint64 {
	t.Helper()
	prog := compileFor(t, src, target, level)
	res, err := Simulate(prog, nil, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

// fwdSrc builds the store-then-load loop: the store always hits g[0]'s
// line and its data depends on the accumulator, so in the idx-0 variant
// the loop-carried chain runs through the store queue — the load must
// wait for the store's (late) data plus the forwarding latency. idx 64
// is 256 bytes away: a different line with identical instruction shape,
// whose load issues independently and breaks the memory carry.
func fwdSrc(idx string) string {
	return `
int g[256];
void main() {
  int s = 0;
  for (int i = 0; i < 5000; i++) {
    g[0] = s + i;
    s += g[` + idx + `];
  }
  print(s);
}`
}

// TestStoreForwardSameLineSerializes: on the out-of-order model a load
// that hits an in-flight older store's line must wait for the store's
// data and pay the forwarding latency, so the same-line loop is slower
// than the byte-for-byte-equal different-line loop, whose load issues
// independently of the store.
func TestStoreForwardSameLineSerializes(t *testing.T) {
	// 4-wide at -O1: the front end is fast enough that per-iteration time
	// is the dependence chain, not fetch bandwidth (at -O0 on a 2-wide
	// machine both variants are fetch-bound and the chain hides).
	cfg := Simulated2Wide(16)
	cfg.Width = 4
	same := cyclesFor(t, fwdSrc("0"), isa.AMD64, compiler.O1, cfg)
	diff := cyclesFor(t, fwdSrc("64"), isa.AMD64, compiler.O1, cfg)
	if same <= diff {
		t.Errorf("same-line store→load loop (%d cycles) should be slower than different-line (%d)",
			same, diff)
	}
}

// TestLoadChainCostsLatencyPerLink: a pointer chase is one load per link
// whose address depends on the previous load, so the window cannot
// overlap links and each costs at least the L1 hit latency. The loop
// overhead (compare, increment, branch) runs under the loads, so the
// per-link cost stays within a few cycles of the raw latency.
func TestLoadChainCostsLatencyPerLink(t *testing.T) {
	const links = 20000
	src := `
int p[512];
void main() {
  for (int i = 0; i < 512; i++) { p[i] = (i + 1) & 511; }
  int j = 0;
  for (int r = 0; r < 20000; r++) { j = p[j]; }
  print(j);
}`
	cfg := Simulated2Wide(16)
	cycles := cyclesFor(t, src, isa.AMD64, compiler.O2, cfg)
	perLink := float64(cycles) / links
	if lo := float64(cfg.L1Lat); perLink < lo {
		t.Errorf("chase costs %.2f cycles/link, below the L1 latency %v — links overlapped",
			perLink, lo)
	}
	if hi := float64(cfg.L1Lat) + 4; perLink > hi {
		t.Errorf("chase costs %.2f cycles/link, above %v — overhead is not hiding under the chain",
			perLink, hi)
	}
}

// TestEPICLoadBlockedByOlderStore: the in-order EPIC model has no
// forwarding network, so a load may not issue past an unresolved older
// store to the same line — it stalls until the store has written the
// cache. The different-line twin issues without the stall.
func TestEPICLoadBlockedByOlderStore(t *testing.T) {
	cfg := Itanium2
	cfg.L1Lat = 3 // widen the store-resolve window so the stall is visible
	// -O1 registerizes the loop locals, so the load issues right behind
	// the store (at -O0 the stack traffic between them already covers the
	// resolve window and the rule never fires).
	same := cyclesFor(t, fwdSrc("0"), isa.IA64, compiler.O1, cfg)
	diff := cyclesFor(t, fwdSrc("64"), isa.IA64, compiler.O1, cfg)
	if same <= diff {
		t.Errorf("EPIC same-line store→load loop (%d cycles) should be slower than different-line (%d)",
			same, diff)
	}
}

// callSrc builds the cross-call pair: both callees run an a/7 divide
// (the longest integer latency) every call, but only the "on" variant
// routes it into the return value the caller's serial chain consumes.
// With frame-versioned register readiness the "off" variant keeps the
// divide off the critical path; if callee register definitions aliased
// into the caller's frame (readiness keyed by bare RegID), both variants
// would crawl and the gap would collapse.
func callSrc(onPath bool) string {
	body := `g[0] = a / 7; return a + 1;`
	if onPath {
		body = `int d = a / 7; g[0] = d; return d + a;`
	}
	return `
int g[64];
int f(int a) { ` + body + ` }
void main() {
  int s = 1;
  for (int i = 0; i < 5000; i++) { s = f(s); }
  print(s);
  print(g[0]);
}`
}

// TestCrossCallRegisterReadiness: the divide only slows the caller's
// chain when its result actually flows through the return value.
func TestCrossCallRegisterReadiness(t *testing.T) {
	cfg := Simulated2Wide(16)
	cfg.ROB = 64 // room to retire past the off-path divide
	off := cyclesFor(t, callSrc(false), isa.AMD64, compiler.O2, cfg)
	on := cyclesFor(t, callSrc(true), isa.AMD64, compiler.O2, cfg)
	if float64(on) < 1.5*float64(off) {
		t.Errorf("on-path divide chain (%d cycles) should cost well over the off-path one (%d): "+
			"callee latency is leaking across frames", on, off)
	}
}
