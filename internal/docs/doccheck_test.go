package docs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// guardedPackages are the packages whose exported API must be fully
// documented: the orchestration layer, the synthesis core, the profiler,
// the persistence layer, the cluster coordination layer, the VM, and the
// timing model (cpu and its cache hierarchy), whose memory-dependence
// semantics docs/memory-model.md documents.
var guardedPackages = []string{
	"../pipeline",
	"../core",
	"../cpu",
	"../cache",
	"../profile",
	"../sfgl",
	"../store",
	"../cluster",
	"../explore",
	"../generate",
	"../vm",
	"../telemetry",
}

// TestExportedIdentifiersDocumented fails for every exported package-level
// identifier (type, function, method, var, const) in the guarded packages
// that lacks a godoc comment. Grouped var/const declarations may share the
// group's doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range guardedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, file := range pkg.Files {
				checkFile(t, fset, filepath.Base(filepath.Dir(path))+"/"+filepath.Base(path), file)
			}
		}
	}
}

func checkFile(t *testing.T, fset *token.FileSet, name string, file *ast.File) {
	t.Helper()
	report := func(pos token.Pos, what, ident string) {
		t.Errorf("%s:%d: exported %s %s has no doc comment",
			name, fset.Position(pos).Line, what, ident)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue // method on an unexported type
			}
			if d.Doc == nil {
				what := "function"
				if d.Recv != nil {
					what = "method"
				}
				report(d.Pos(), what, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(s.Pos(), kindOf(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a method receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// kindOf names a GenDecl token for error messages.
func kindOf(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return tok.String()
}
