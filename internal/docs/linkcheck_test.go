package docs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches markdown inline links and captures the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinksResolve walks every markdown file in the repository and
// requires each relative link target to exist on disk. External links
// (http/https/mailto) and pure in-page anchors are skipped; a fragment on
// a relative link is stripped before the existence check.
func TestMarkdownLinksResolve(t *testing.T) {
	root := "../.."
	var mdFiles []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found — wrong root?")
	}

	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.Index(target, "#"); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				rel, _ := filepath.Rel(root, md)
				t.Errorf("%s: broken link %q (resolved %s)", rel, m[1], resolved)
			}
		}
	}
}
