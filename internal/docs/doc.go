// Package docs holds the repository's documentation guards: test-enforced
// invariants that every exported identifier in the core packages carries a
// godoc comment and that every relative link in the repo's markdown files
// resolves. The guards run under plain `go test ./...`, so CI keeps the
// documentation from rotting without any extra tooling.
package docs
