// Command synth is the framework's command-line front end: it profiles
// workloads, synthesizes benchmark clones, and regenerates the paper's
// evaluation, all through the internal/pipeline orchestration layer.
//
// Usage:
//
//	synth profile -workload NAME [-isa amd64] [-O 0] [-workers N]
//	synth synthesize -workload NAME [-seed N] [-report] [-validate]
//	synth experiments [-suite tiny|quick|full] [-only LIST] [-workers N] [-seed N]
//	synth workloads
//
// `synth experiments` renders the same rows as the library API in
// internal/experiments (it calls the same Runner), so the CLI and `go
// test` agree by construction.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// commonFlags are shared by every subcommand.
type commonFlags struct {
	workers int
	seed    int64
	isaName string
	level   int
}

func addCommon(fs *flag.FlagSet, c *commonFlags) {
	fs.IntVar(&c.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.Int64Var(&c.seed, "seed", experiments.CloneSeed, "clone synthesis seed")
	fs.StringVar(&c.isaName, "isa", isa.AMD64.Name, "profiling target ISA (x86v, amd64v, ia64v)")
	fs.IntVar(&c.level, "O", 0, "profiling optimization level (0-3)")
}

func (c *commonFlags) pipeline() (*pipeline.Pipeline, error) {
	target := isa.ByName(c.isaName)
	if target == nil {
		return nil, fmt.Errorf("unknown ISA %q", c.isaName)
	}
	if c.level < 0 || c.level >= len(compiler.Levels) {
		return nil, fmt.Errorf("optimization level -O%d out of range 0-%d", c.level, len(compiler.Levels)-1)
	}
	return pipeline.New(pipeline.Options{
		Workers:      c.workers,
		Seed:         c.seed,
		ProfileISA:   target,
		ProfileLevel: compiler.Levels[c.level],
	}), nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "profile":
		err = cmdProfile(ctx, args[1:], stdout, stderr)
	case "synthesize":
		err = cmdSynthesize(ctx, args[1:], stdout, stderr)
	case "experiments":
		err = cmdExperiments(ctx, args[1:], stdout, stderr)
	case "workloads":
		err = cmdWorkloads(args[1:], stdout)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "synth: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		if err == flag.ErrHelp {
			return 2
		}
		fmt.Fprintf(stderr, "synth: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `synth — benchmark synthesis for architecture and compiler exploration

Commands:
  profile      profile a workload and emit its statistical profile as JSON
  synthesize   synthesize a workload's clone and emit its HLC source
  experiments  regenerate the paper's tables and figures
  workloads    list available workload/input pairs

Common flags: -workers N  -seed N  -isa NAME  -O N
Run "synth <command> -h" for command-specific flags.
`)
}

func lookupWorkload(name string) (*workloads.Workload, error) {
	if name == "" {
		return nil, fmt.Errorf("missing -workload (try \"synth workloads\")")
	}
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q (try \"synth workloads\")", name)
	}
	return w, nil
}

func cmdProfile(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	name := fs.String("workload", "", "workload/input pair to profile (e.g. crc32/small)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := lookupWorkload(*name)
	if err != nil {
		return err
	}
	p, err := c.pipeline()
	if err != nil {
		return err
	}
	prof, err := p.Profile(ctx, w)
	if err != nil {
		return err
	}
	return prof.Save(stdout)
}

func cmdSynthesize(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth synthesize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	name := fs.String("workload", "", "workload/input pair to clone (e.g. crc32/small)")
	report := fs.Bool("report", false, "print the synthesis report to stderr")
	validate := fs.Bool("validate", false, "run the Validate stage on the clone")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := lookupWorkload(*name)
	if err != nil {
		return err
	}
	p, err := c.pipeline()
	if err != nil {
		return err
	}
	cl, err := p.Synthesize(ctx, w)
	if err != nil {
		return err
	}
	if *validate {
		if err := p.Validate(ctx, w); err != nil {
			return err
		}
	}
	if *report {
		rep := cl.Report
		fmt.Fprintf(stderr, "workload %s: R=%d coverage=%.3f functions=%d stream classes=%v\n",
			rep.Workload, rep.Reduction, rep.Coverage, rep.Functions, rep.StreamClasses)
	}
	fmt.Fprint(stdout, cl.Source)
	return nil
}

// experimentNames is the render order of `synth experiments`.
var experimentNames = []string{
	"table1", "table2", "table3",
	"fig4", "fig5", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11",
	"obfuscation",
}

func cmdExperiments(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	suite := fs.String("suite", "quick", "workload suite: tiny, quick, or full")
	only := fs.String("only", "", "comma-separated experiment subset (e.g. fig4,fig11); empty = all")
	stats := fs.Bool("stats", false, "print artifact-cache statistics to stderr afterwards")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ws []*workloads.Workload
	switch *suite {
	case "tiny":
		for _, n := range []string{"crc32/small", "dijkstra/small", "fft/small1"} {
			if w := workloads.ByName(n); w != nil {
				ws = append(ws, w)
			}
		}
	case "quick":
		ws = experiments.Quick()
	case "full":
		ws = experiments.Full()
	default:
		return fmt.Errorf("unknown suite %q (want tiny, quick, or full)", *suite)
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			n = strings.TrimSpace(strings.ToLower(n))
			if n == "" {
				continue
			}
			ok := false
			for _, known := range experimentNames {
				if n == known {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", n, strings.Join(experimentNames, ", "))
			}
			selected[n] = true
		}
	}
	want := func(n string) bool { return len(selected) == 0 || selected[n] }

	p, err := c.pipeline()
	if err != nil {
		return err
	}
	r := experiments.NewRunner(p)

	type printable interface{ Print(io.Writer) }
	render := func(name string, run func() (printable, error)) error {
		if !want(name) {
			return nil
		}
		res, err := run()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res.Print(stdout)
		fmt.Fprintln(stdout)
		return nil
	}

	if want("table1") {
		experiments.PrintTableI(stdout, experiments.TableI())
		fmt.Fprintln(stdout)
	}
	if err := render("table2", func() (printable, error) { return r.TableII(ctx, ws) }); err != nil {
		return err
	}
	if want("table3") {
		experiments.PrintTableIII(stdout)
		fmt.Fprintln(stdout)
	}
	steps := []struct {
		name string
		run  func() (printable, error)
	}{
		{"fig4", func() (printable, error) { return r.Fig4(ctx, ws) }},
		{"fig5", func() (printable, error) { return r.Fig5(ctx, ws) }},
		{"fig6a", func() (printable, error) { return r.Fig6(ctx, ws, compiler.O0) }},
		{"fig6b", func() (printable, error) { return r.Fig6(ctx, ws, compiler.O2) }},
		{"fig7", func() (printable, error) { return r.FigCache(ctx, ws, compiler.O0) }},
		{"fig8", func() (printable, error) { return r.FigCache(ctx, ws, compiler.O2) }},
		{"fig9", func() (printable, error) { return r.Fig9(ctx, ws) }},
		{"fig10", func() (printable, error) { return r.Fig10(ctx, ws) }},
		{"fig11", func() (printable, error) { return r.Fig11(ctx, ws) }},
		{"obfuscation", func() (printable, error) { return r.Obfuscation(ctx, ws) }},
	}
	for _, s := range steps {
		if err := render(s.name, s.run); err != nil {
			return err
		}
	}
	if *stats {
		cs := p.CacheStats()
		total := cs.Hits + cs.Misses
		rate := 0.0
		if total > 0 {
			rate = float64(cs.Hits) / float64(total)
		}
		fmt.Fprintf(stderr, "artifact cache: %d hits, %d misses (%.1f%% hit rate), %d workers\n",
			cs.Hits, cs.Misses, rate*100, p.Workers())
	}
	return nil
}

func cmdWorkloads(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synth workloads", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	byBench := map[string][]string{}
	var benches []string
	for _, w := range workloads.All() {
		if _, ok := byBench[w.Bench]; !ok {
			benches = append(benches, w.Bench)
		}
		byBench[w.Bench] = append(byBench[w.Bench], w.Name)
	}
	sort.Strings(benches)
	for _, b := range benches {
		fmt.Fprintf(stdout, "%-14s %s\n", b, strings.Join(byBench[b], " "))
	}
	return nil
}
