// Command synth is the framework's command-line front end: it profiles
// workloads, synthesizes benchmark clones, regenerates the paper's
// evaluation, consolidates profiles, and serves the whole flow over HTTP,
// all through the internal/pipeline orchestration layer.
//
// Usage:
//
//	synth profile -workload NAME [-isa amd64] [-O 0] [-workers N] [-store DIR]
//	synth synthesize {-workload NAME | -from PROFILE.json} [-seed N] [-report] [-validate]
//	synth consolidate [-name NAME] [-synthesize] WORKLOAD-OR-PROFILE.json...
//	synth experiments [-suite tiny|quick|full] [-only LIST] [-stats] [-store DIR]
//	synth bench [-suite quick] [-out FILE] [-check BASELINE.json] [-max-regress 0.2]
//	synth explore {-spec FILE | -preset NAME} [-store DIR] [-top K] [-json] [-dispatch [-wait]] [-generate FILE]
//	synth generate [-n N] [-spec FILE] [-suite quick] [-seed N] [-json] [-out DIR] [-dispatch [-wait]]
//	synth dispatch -store DIR [-suite quick] [-isas LIST] [-levels LIST] [-wait] [-force]
//	synth work {-store DIR | -remote URL [-token SECRET]} [-id NAME] [-lease-ttl D] [-workers N]
//	synth store-gc -store DIR [-max-age D] [-max-bytes N] [-wip-max-age D] [-dry-run]
//	synth serve [-addr HOST:PORT] [-store DIR] [-token SECRET] [-pool-max N [-pool-min N] [-job-timeout D]]
//	synth workloads
//
// `synth experiments` renders the same rows as the library API in
// internal/experiments (it calls the same Runner), so the CLI and `go
// test` agree by construction. See docs/cli.md for the full reference.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strings"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// commonFlags are shared by every subcommand.
type commonFlags struct {
	workers  int
	seed     int64
	isaName  string
	level    int
	storeDir string
	// tracePath is the -trace flag: where to write the pipeline span trace
	// (empty = tracing off). metrics and tracer are the telemetry handles
	// pipelineWith plumbs into the pipeline; commands that own a registry
	// (serve) set metrics directly, and pipelineWith creates the tracer
	// lazily from tracePath.
	tracePath string
	metrics   *telemetry.Registry
	tracer    *telemetry.Tracer
}

// traceSpanCapacity bounds the -trace ring: a full-suite experiments run
// is a few thousand stage computations; beyond that the oldest spans are
// dropped (and reported).
const traceSpanCapacity = 65536

func addCommon(fs *flag.FlagSet, c *commonFlags) {
	fs.IntVar(&c.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	fs.Int64Var(&c.seed, "seed", experiments.CloneSeed, "clone synthesis seed")
	fs.StringVar(&c.isaName, "isa", isa.AMD64.Name, "profiling target ISA (x86v, amd64v, ia64v)")
	fs.IntVar(&c.level, "O", 0, "profiling optimization level (0-3)")
	fs.StringVar(&c.storeDir, "store", "", "persistent artifact store directory (empty = memory-only)")
	fs.StringVar(&c.tracePath, "trace", "", "write computed pipeline stages as a Chrome trace_event JSON file (load in chrome://tracing or ui.perfetto.dev)")
}

func (c *commonFlags) pipeline() (*pipeline.Pipeline, error) {
	if c.storeDir == "" {
		// A literal nil: wrapping a nil *store.Store in the Backend
		// interface would read as non-nil inside the pipeline.
		return c.pipelineWith(nil)
	}
	st, err := store.Open(c.storeDir)
	if err != nil {
		return nil, err
	}
	return c.pipelineWith(st)
}

// pipelineWith builds the pipeline over an already-opened store backend
// (nil = memory-only), for commands that also hold the backend's cluster
// queue and must share one instance between both.
func (c *commonFlags) pipelineWith(st store.Backend) (*pipeline.Pipeline, error) {
	target := isa.ByName(c.isaName)
	if target == nil {
		return nil, fmt.Errorf("unknown ISA %q", c.isaName)
	}
	if c.level < 0 || c.level >= len(compiler.Levels) {
		return nil, fmt.Errorf("optimization level -O%d out of range 0-%d", c.level, len(compiler.Levels)-1)
	}
	if c.tracePath != "" && c.tracer == nil {
		c.tracer = telemetry.NewTracer(traceSpanCapacity)
	}
	return pipeline.New(pipeline.Options{
		Workers:      c.workers,
		Seed:         c.seed,
		ProfileISA:   target,
		ProfileLevel: compiler.Levels[c.level],
		Store:        st,
		Metrics:      c.metrics,
		Tracer:       c.tracer,
	}), nil
}

// writeTrace flushes the -trace span ring to its file. It runs deferred
// after the command's work — including failed runs, which are exactly the
// ones worth inspecting — and logs rather than fails: the command's own
// result must win the exit code.
func (c *commonFlags) writeTrace(stderr io.Writer) {
	if c.tracer == nil || c.tracePath == "" {
		return
	}
	if err := exportTrace(c.tracer, c.tracePath); err != nil {
		fmt.Fprintf(stderr, "synth: trace: %v\n", err)
		return
	}
	if n := c.tracer.Dropped(); n > 0 {
		fmt.Fprintf(stderr, "synth: trace: ring full, oldest %d span(s) dropped from %s\n", n, c.tracePath)
	}
}

// exportTrace writes one tracer's spans as Chrome trace JSON at path.
func exportTrace(t *telemetry.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printStats renders the artifact-cache statistics line. The format is
// stable: CI greps the per-stage computed counts to assert that a
// warm-store run redoes no compile or profile work.
func printStats(w io.Writer, p *pipeline.Pipeline) {
	cs := p.CacheStats()
	total := cs.Hits + cs.Misses + cs.DiskHits
	rate := 0.0
	if total > 0 {
		rate = float64(cs.Hits+cs.DiskHits) / float64(total)
	}
	fmt.Fprintf(w, "artifact cache: %d hits, %d disk hits, %d misses (%.1f%% hit rate), %d disk errors, %d workers; computed parse=%d check=%d compile=%d profile=%d synthesize=%d validate=%d simulate=%d generate=%d\n",
		cs.Hits, cs.DiskHits, cs.Misses, rate*100, cs.DiskErrors, p.Workers(),
		cs.ComputedFor(pipeline.StageParse), cs.ComputedFor(pipeline.StageCheck),
		cs.ComputedFor(pipeline.StageCompile), cs.ComputedFor(pipeline.StageProfile),
		cs.ComputedFor(pipeline.StageSynthesize), cs.ComputedFor(pipeline.StageValidate),
		cs.ComputedFor(pipeline.StageSimulate), cs.ComputedFor(pipeline.StageGenerate))
}

// writeIndentedJSON renders v as indented JSON, the CLI's JSON style.
func writeIndentedJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(v)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "profile":
		err = cmdProfile(ctx, args[1:], stdout, stderr)
	case "synthesize":
		err = cmdSynthesize(ctx, args[1:], stdout, stderr)
	case "consolidate":
		err = cmdConsolidate(ctx, args[1:], stdout, stderr)
	case "experiments":
		err = cmdExperiments(ctx, args[1:], stdout, stderr)
	case "bench":
		err = cmdBench(ctx, args[1:], stdout, stderr)
	case "explore":
		err = cmdExplore(ctx, args[1:], stdout, stderr)
	case "generate":
		err = cmdGenerate(ctx, args[1:], stdout, stderr)
	case "dispatch":
		err = cmdDispatch(ctx, args[1:], stdout, stderr)
	case "work":
		err = cmdWork(ctx, args[1:], stdout, stderr)
	case "store-gc":
		err = cmdStoreGC(ctx, args[1:], stdout, stderr)
	case "serve":
		err = cmdServe(ctx, args[1:], stdout, stderr)
	case "workloads":
		err = cmdWorkloads(args[1:], stdout)
	case "help", "-h", "-help", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "synth: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		if err == flag.ErrHelp {
			return 2
		}
		fmt.Fprintf(stderr, "synth: %v\n", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `synth — benchmark synthesis for architecture and compiler exploration

Commands:
  profile      profile a workload and emit its statistical profile as JSON
  synthesize   synthesize a clone (from a workload or -from a saved profile)
  consolidate  merge several profiles into one consolidated proxy profile
  experiments  regenerate the paper's tables and figures
  bench        time the cold profile+validate path and emit a JSON report
  explore      sweep a microarchitecture design space and rank the points
  generate     sample and realize synthetic workloads targeting coverage holes
  dispatch     enqueue a suite's jobs into a shared store's cluster queue
  work         run one cluster worker (-store DIR, or -remote URL of a serve node)
  store-gc     evict old entries from a persistent artifact store
  serve        expose the HTTP service; -pool-max N embeds a self-scaling worker pool
  workloads    list available workload/input pairs

Common flags: -workers N  -seed N  -isa NAME  -O N  -store DIR
Run "synth <command> -h" for command-specific flags; see docs/cli.md and
docs/cluster.md.
`)
}

func lookupWorkload(name string) (*workloads.Workload, error) {
	if name == "" {
		return nil, fmt.Errorf("missing -workload (try \"synth workloads\")")
	}
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q (try \"synth workloads\")", name)
	}
	return w, nil
}

func cmdProfile(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth profile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	name := fs.String("workload", "", "workload/input pair to profile (e.g. crc32/small)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	w, err := lookupWorkload(*name)
	if err != nil {
		return err
	}
	p, err := c.pipeline()
	if err != nil {
		return err
	}
	defer c.writeTrace(stderr)
	prof, err := p.Profile(ctx, w)
	if err != nil {
		return err
	}
	return prof.Save(stdout)
}

// loadProfileFile reads a saved statistical profile (the JSON that `synth
// profile` emits).
func loadProfileFile(path string) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	prof, err := profile.Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if prof.Graph == nil {
		return nil, fmt.Errorf("%s: not a profile (missing graph)", path)
	}
	return prof, nil
}

func cmdSynthesize(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth synthesize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	name := fs.String("workload", "", "workload/input pair to clone (e.g. crc32/small)")
	from := fs.String("from", "", "synthesize from a saved profile JSON file instead of a workload")
	report := fs.Bool("report", false, "print the synthesis report to stderr")
	validate := fs.Bool("validate", false, "run the Validate stage on the clone")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name != "" && *from != "" {
		return fmt.Errorf("-workload and -from are mutually exclusive")
	}
	p, err := c.pipeline()
	if err != nil {
		return err
	}
	defer c.writeTrace(stderr)

	var cl *pipeline.Clone
	switch {
	case *from != "":
		if *validate {
			return fmt.Errorf("-validate requires -workload (the Validate stage is keyed by workload)")
		}
		prof, err := loadProfileFile(*from)
		if err != nil {
			return err
		}
		if cl, err = p.SynthesizeProfile(ctx, prof); err != nil {
			return err
		}
	default:
		w, err := lookupWorkload(*name)
		if err != nil {
			return err
		}
		if cl, err = p.Synthesize(ctx, w); err != nil {
			return err
		}
		if *validate {
			if err := p.Validate(ctx, w); err != nil {
				return err
			}
		}
	}
	if *report {
		rep := cl.Report
		fmt.Fprintf(stderr, "workload %s: R=%d coverage=%.3f functions=%d stream classes=%v\n",
			rep.Workload, rep.Reduction, rep.Coverage, rep.Functions, rep.StreamClasses)
	}
	fmt.Fprint(stdout, cl.Source)
	return nil
}

// cmdConsolidate merges several profiles (Section II.B.e, "benchmark
// consolidation") into one proxy profile. Each argument is either a path
// to a saved profile JSON file or a workload name to profile in-process.
func cmdConsolidate(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth consolidate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	name := fs.String("name", "consolidated", "name of the merged profile")
	synth := fs.Bool("synthesize", false, "emit the consolidated clone's HLC source instead of the merged profile JSON")
	report := fs.Bool("report", false, "with -synthesize, print the synthesis report to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("nothing to consolidate: pass workload names and/or profile JSON files")
	}
	p, err := c.pipeline()
	if err != nil {
		return err
	}
	defer c.writeTrace(stderr)
	// Resolve every input first (cheap), then profile the workload-named
	// ones on the pipeline's worker pool; Map preserves argument order, so
	// the merge is deterministic.
	profs, err := pipeline.Map(ctx, p, fs.Args(),
		func(ctx context.Context, arg string) (*profile.Profile, error) {
			if _, statErr := os.Stat(arg); statErr == nil {
				return loadProfileFile(arg)
			}
			w, err := lookupWorkload(arg)
			if err != nil {
				return nil, fmt.Errorf("%q is neither a file nor a workload: %w", arg, err)
			}
			return p.Profile(ctx, w)
		})
	if err != nil {
		return err
	}
	merged, err := core.Consolidate(*name, profs...)
	if err != nil {
		return err
	}
	if !*synth {
		return merged.Save(stdout)
	}
	cl, err := p.SynthesizeProfile(ctx, merged)
	if err != nil {
		return err
	}
	if *report {
		rep := cl.Report
		fmt.Fprintf(stderr, "consolidated %s (%d profiles): R=%d coverage=%.3f functions=%d\n",
			*name, len(profs), rep.Reduction, rep.Coverage, rep.Functions)
	}
	fmt.Fprint(stdout, cl.Source)
	return nil
}

// experimentNames is the render order of `synth experiments`.
var experimentNames = []string{
	"table1", "table2", "table3",
	"fig4", "fig5", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11",
	"obfuscation",
}

// suiteWorkloads resolves a suite name to its workload set.
func suiteWorkloads(suite string) ([]*workloads.Workload, error) {
	return experiments.Suite(suite)
}

// parseOnly parses the -only experiment subset; an empty string selects
// everything.
func parseOnly(only string) (map[string]bool, error) {
	selected := map[string]bool{}
	if only == "" {
		return selected, nil
	}
	for _, n := range strings.Split(only, ",") {
		n = strings.TrimSpace(strings.ToLower(n))
		if n == "" {
			continue
		}
		ok := false
		for _, known := range experimentNames {
			if n == known {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)", n, strings.Join(experimentNames, ", "))
		}
		selected[n] = true
	}
	return selected, nil
}

// renderExperiments writes the selected experiments for a suite to out,
// in the fixed experimentNames order. It is the single rendering path
// behind both `synth experiments` and the serve endpoint, so the CLI, the
// service, and the library API agree by construction.
func renderExperiments(ctx context.Context, r *experiments.Runner, ws []*workloads.Workload, selected map[string]bool, out io.Writer) error {
	want := func(n string) bool { return len(selected) == 0 || selected[n] }

	type printable interface{ Print(io.Writer) }
	render := func(name string, run func() (printable, error)) error {
		if !want(name) {
			return nil
		}
		res, err := run()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		res.Print(out)
		fmt.Fprintln(out)
		return nil
	}

	if want("table1") {
		experiments.PrintTableI(out, experiments.TableI())
		fmt.Fprintln(out)
	}
	if err := render("table2", func() (printable, error) { return r.TableII(ctx, ws) }); err != nil {
		return err
	}
	if want("table3") {
		experiments.PrintTableIII(out)
		fmt.Fprintln(out)
	}
	steps := []struct {
		name string
		run  func() (printable, error)
	}{
		{"fig4", func() (printable, error) { return r.Fig4(ctx, ws) }},
		{"fig5", func() (printable, error) { return r.Fig5(ctx, ws) }},
		{"fig6a", func() (printable, error) { return r.Fig6(ctx, ws, compiler.O0) }},
		{"fig6b", func() (printable, error) { return r.Fig6(ctx, ws, compiler.O2) }},
		{"fig7", func() (printable, error) { return r.FigCache(ctx, ws, compiler.O0) }},
		{"fig8", func() (printable, error) { return r.FigCache(ctx, ws, compiler.O2) }},
		{"fig9", func() (printable, error) { return r.Fig9(ctx, ws) }},
		{"fig10", func() (printable, error) { return r.Fig10(ctx, ws) }},
		{"fig11", func() (printable, error) { return r.Fig11(ctx, ws) }},
		{"obfuscation", func() (printable, error) { return r.Obfuscation(ctx, ws) }},
	}
	for _, s := range steps {
		if err := render(s.name, s.run); err != nil {
			return err
		}
	}
	return nil
}

func cmdExperiments(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	suite := fs.String("suite", "quick", "workload suite: tiny, quick, or full")
	only := fs.String("only", "", "comma-separated experiment subset (e.g. fig4,fig11); empty = all")
	stats := fs.Bool("stats", false, "print artifact-cache statistics to stderr afterwards")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ws, err := suiteWorkloads(*suite)
	if err != nil {
		return err
	}
	selected, err := parseOnly(*only)
	if err != nil {
		return err
	}
	p, err := c.pipeline()
	if err != nil {
		return err
	}
	defer c.writeTrace(stderr)
	if err := renderExperiments(ctx, experiments.NewRunner(p), ws, selected, stdout); err != nil {
		return err
	}
	if *stats {
		printStats(stderr, p)
	}
	return nil
}

func cmdWorkloads(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synth workloads", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	byBench := map[string][]string{}
	var benches []string
	for _, w := range workloads.All() {
		if _, ok := byBench[w.Bench]; !ok {
			benches = append(benches, w.Bench)
		}
		byBench[w.Bench] = append(byBench[w.Bench], w.Name)
	}
	sort.Strings(benches)
	for _, b := range benches {
		fmt.Fprintf(stdout, "%-14s %s\n", b, strings.Join(byBench[b], " "))
	}
	return nil
}
