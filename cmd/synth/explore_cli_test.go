package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/explore"
	"repro/internal/pipeline"
)

// testSweepSpec is the sweep the CLI and cluster tests share: the tiny
// suite over 3 design points (base + two axis values) at one level.
const testSweepSpec = `{
  "name": "cli-sweep",
  "suite": "tiny",
  "levels": [2],
  "base": "2-wide OoO",
  "axes": {"memLat": [150, 600]}
}`

// writeSpec drops the test sweep spec into a temp file.
func writeSpec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(testSweepSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExploreCLIWarmRerun is the PR's CLI acceptance property: a cold
// `synth explore` computes the sweep, and a warm rerun of the same spec
// over the same store reports zero simulate-stage recomputations while
// printing the identical report.
func TestExploreCLIWarmRerun(t *testing.T) {
	spec := writeSpec(t)
	dir := t.TempDir()

	var coldOut, coldErr bytes.Buffer
	if c := run(context.Background(), []string{"explore", "-spec", spec, "-store", dir, "-seed", "1", "-stats"}, &coldOut, &coldErr); c != 0 {
		t.Fatalf("cold explore exited %d: %s", c, coldErr.String())
	}
	if !strings.Contains(coldOut.String(), "pareto frontier") {
		t.Fatalf("cold run printed no report:\n%s", coldOut.String())
	}
	if strings.Contains(coldErr.String(), "simulate=0") {
		t.Fatalf("cold run computed no simulations:\n%s", coldErr.String())
	}

	var warmOut, warmErr bytes.Buffer
	if c := run(context.Background(), []string{"explore", "-spec", spec, "-store", dir, "-seed", "1", "-stats"}, &warmOut, &warmErr); c != 0 {
		t.Fatalf("warm explore exited %d: %s", c, warmErr.String())
	}
	if !strings.Contains(warmErr.String(), "compile=0 profile=0 synthesize=0 validate=0 simulate=0") {
		t.Fatalf("warm rerun recomputed artifacts:\n%s", warmErr.String())
	}
	if warmOut.String() != coldOut.String() {
		t.Errorf("warm report differs from cold:\ncold:\n%s\nwarm:\n%s", coldOut.String(), warmOut.String())
	}
}

// TestExploreCLIJSONAndErrors covers the JSON output mode and the
// spec-handling error paths.
func TestExploreCLIJSONAndErrors(t *testing.T) {
	spec := writeSpec(t)
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"explore", "-spec", spec, "-seed", "1", "-json", "-top", "1"}, &out, &errb); c != 0 {
		t.Fatalf("explore -json exited %d: %s", c, errb.String())
	}
	var rep explore.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("JSON output does not decode: %v", err)
	}
	if rep.Name != "cli-sweep" || len(rep.Points) != 3 || rep.TopK != 1 {
		t.Errorf("decoded report: name=%q points=%d topK=%d", rep.Name, len(rep.Points), rep.TopK)
	}

	for _, args := range [][]string{
		{"explore"}, // no spec
		{"explore", "-spec", spec, "-preset", "calibration"}, // both
		{"explore", "-preset", "turbo"},                      // unknown preset
		{"explore", "-spec", "/does/not/exist.json"},
		{"explore", "-spec", spec, "-dispatch"}, // dispatch without store
	} {
		out.Reset()
		errb.Reset()
		if c := run(context.Background(), args, &out, &errb); c == 0 {
			t.Errorf("%v: expected a nonzero exit", args)
		}
	}
}

// TestClusterExploreSharded is the PR's cluster acceptance property:
// three `synth work` processes draining a dispatched sweep produce a
// store byte-identical to a solo worker's, with zero duplicated stage
// computations, and the dispatcher aggregates the final report without
// recomputing anything.
func TestClusterExploreSharded(t *testing.T) {
	spec := writeSpec(t)
	dispatch := func(dir string) string {
		var out, errb bytes.Buffer
		if c := run(context.Background(), []string{"explore", "-spec", spec, "-store", dir, "-seed", "1", "-dispatch"}, &out, &errb); c != 0 {
			t.Fatalf("explore -dispatch exited %d: %s", c, errb.String())
		}
		return errb.String()
	}

	// Reference: one worker drains the sweep cold.
	solo := t.TempDir()
	dispatch(solo)
	if code, errOut := runWorker(t, solo, "solo"); code != 0 {
		t.Fatalf("solo worker exited %d: %s", code, errOut)
	}
	soloSum := sumComputed(t, solo)
	if soloSum.ComputedFor(pipeline.StageSimulate) == 0 {
		t.Fatalf("solo drain simulated nothing: %+v", soloSum)
	}

	// Same dispatch, three concurrent workers on a fresh store.
	shared := t.TempDir()
	dispatch(shared)
	var wg sync.WaitGroup
	codes := make([]int, 3)
	errs := make([]string, 3)
	for i, id := range []string{"w1", "w2", "w3"} {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			codes[i], errs[i] = runWorker(t, shared, id)
		}(i, id)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 0 {
			t.Fatalf("worker %d exited %d: %s", i, code, errs[i])
		}
	}

	// Zero duplicated computation across the fleet.
	sharedSum := sumComputed(t, shared)
	for st := pipeline.Stage(0); int(st) < pipeline.NumStages; st++ {
		if got, want := sharedSum.ComputedFor(st), soloSum.ComputedFor(st); got != want {
			t.Errorf("stage %v: 3 workers computed %d artifacts, solo computed %d", st, got, want)
		}
	}

	// Byte-identical stores.
	soloEntries, sharedEntries := storeEntries(t, solo), storeEntries(t, shared)
	if len(soloEntries) == 0 || len(soloEntries) != len(sharedEntries) {
		t.Fatalf("store entry counts differ: solo %d, shared %d", len(soloEntries), len(sharedEntries))
	}
	for rel, data := range soloEntries {
		if sharedEntries[rel] != data {
			t.Errorf("store entry %s differs between solo and sharded runs", rel)
		}
	}

	// The dispatcher's aggregation pass over the drained store is free,
	// and a re-dispatch sees nothing to do.
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"explore", "-spec", spec, "-store", shared, "-seed", "1", "-stats"}, &out, &errb); c != 0 {
		t.Fatalf("post-drain explore exited %d: %s", c, errb.String())
	}
	if !strings.Contains(errb.String(), "compile=0 profile=0 synthesize=0 validate=0 simulate=0") {
		t.Fatalf("post-drain aggregation recomputed artifacts:\n%s", errb.String())
	}
	redispatch := dispatch(shared)
	if !strings.Contains(redispatch, "0 enqueued") {
		t.Errorf("re-dispatch enqueued work over a drained queue: %s", redispatch)
	}
}

// TestServeExplore exercises POST /api/v1/explore against the library
// engine: same spec, same pipeline, byte-equal report.
func TestServeExplore(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	req := httptest.NewRequest("POST", "/api/v1/explore", strings.NewReader(testSweepSpec))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var got explore.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response does not decode: %v", err)
	}

	sw, err := explore.ParseSpec([]byte(testSweepSpec))
	if err != nil {
		t.Fatal(err)
	}
	want, err := explore.Run(context.Background(), p, sw)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("endpoint report differs from library:\nendpoint %s\nlibrary  %s", gotJSON, wantJSON)
	}

	// Method and body validation.
	code, body := get(t, h, "/api/v1/explore")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d: %s", code, body)
	}
	req = httptest.NewRequest("POST", "/api/v1/explore", strings.NewReader(`{"suite": "nope"}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad spec: status %d: %s", rec.Code, rec.Body.String())
	}
}
