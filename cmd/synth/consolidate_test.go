package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hlc"
	"repro/internal/profile"
)

// TestSynthesizeFromProfile checks the profile-load flow end to end at the
// CLI: `synth profile` output fed back through `synth synthesize -from`
// produces the same clone as the named-workload flow.
func TestSynthesizeFromProfile(t *testing.T) {
	profJSON := drainRun(t, "profile", "-workload", "crc32/small", "-seed", "1")
	path := filepath.Join(t.TempDir(), "crc32.json")
	if err := os.WriteFile(path, []byte(profJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	fromFile := drainRun(t, "synthesize", "-from", path, "-seed", "1")
	named := drainRun(t, "synthesize", "-workload", "crc32/small", "-seed", "1")
	if fromFile != named {
		t.Error("synthesize -from differs from synthesize -workload for the same profile")
	}
}

// TestSynthesizeFlagConflicts covers the mutually exclusive flag paths.
func TestSynthesizeFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"synthesize", "-workload", "crc32/small", "-from", "x.json"},
		{"synthesize", "-from", "x.json", "-validate"},
		{"synthesize", "-from", "/no/such/file.json"},
	} {
		var out, errb bytes.Buffer
		if code := run(context.Background(), args, &out, &errb); code == 0 {
			t.Errorf("synth %s should fail", strings.Join(args, " "))
		}
	}
}

// TestConsolidateCLI merges two workload profiles and checks the merged
// profile's totals; with -synthesize it checks the consolidated clone is a
// valid HLC program.
func TestConsolidateCLI(t *testing.T) {
	p1 := loadProfileString(t, drainRun(t, "profile", "-workload", "crc32/small", "-seed", "1"))
	p2 := loadProfileString(t, drainRun(t, "profile", "-workload", "dijkstra/small", "-seed", "1"))

	mergedJSON := drainRun(t, "consolidate", "-name", "duo", "-seed", "1",
		"crc32/small", "dijkstra/small")
	merged := loadProfileString(t, mergedJSON)
	if merged.Workload != "duo" {
		t.Errorf("merged name = %q, want duo", merged.Workload)
	}
	if merged.TotalDyn != p1.TotalDyn+p2.TotalDyn {
		t.Errorf("merged TotalDyn = %d, want %d", merged.TotalDyn, p1.TotalDyn+p2.TotalDyn)
	}
	if len(merged.Graph.FuncNames) != len(p1.Graph.FuncNames)+len(p2.Graph.FuncNames) {
		t.Error("merged graph lost functions")
	}

	// A saved profile file mixes with workload names as inputs.
	path := filepath.Join(t.TempDir(), "crc32.json")
	if err := os.WriteFile(path, []byte(drainRun(t, "profile", "-workload", "crc32/small", "-seed", "1")), 0o644); err != nil {
		t.Fatal(err)
	}
	mixed := loadProfileString(t, drainRun(t, "consolidate", "-seed", "1", path, "dijkstra/small"))
	if mixed.TotalDyn != merged.TotalDyn {
		t.Errorf("file+name consolidation TotalDyn = %d, want %d", mixed.TotalDyn, merged.TotalDyn)
	}

	src := drainRun(t, "consolidate", "-synthesize", "-seed", "1",
		"crc32/small", "dijkstra/small")
	if _, err := hlc.Parse(src); err != nil {
		t.Errorf("consolidated clone does not parse: %v", err)
	}

	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"consolidate"}, &out, &errb); code == 0 {
		t.Error("consolidate with no inputs should fail")
	}
}

// TestWarmStoreStatsLine runs the same experiments twice against one store
// directory and pins the stats-line property CI asserts: the warm run
// reports zero compile and profile computations. It also pins the line's
// format — `computed ... compile=N profile=N` — which CI greps.
func TestWarmStoreStatsLine(t *testing.T) {
	dir := t.TempDir()
	statsLine := func() string {
		var out, errb bytes.Buffer
		args := []string{"experiments", "-suite", "tiny", "-only", "table2",
			"-store", dir, "-stats", "-seed", "1"}
		if code := run(context.Background(), args, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return errb.String()
	}
	cold := statsLine()
	if !strings.Contains(cold, "computed parse=") {
		t.Fatalf("stats line format drifted (CI greps it): %q", cold)
	}
	if strings.Contains(cold, "compile=0") {
		t.Fatalf("cold run should compile: %q", cold)
	}
	warm := statsLine()
	if !strings.Contains(warm, "compile=0 profile=0") {
		t.Errorf("warm run recomputed compile/profile artifacts: %q", warm)
	}
}

func loadProfileString(t *testing.T, s string) *profile.Profile {
	t.Helper()
	p, err := profile.Load(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return p
}
