package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/telemetry"
)

// telemetryServer builds a server whose pipeline shares the returned
// registry, the way cmdServe wires them.
func telemetryServer(t *testing.T, opts serverOptions) (*server, *pipeline.Pipeline, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	p := pipeline.New(pipeline.Options{Workers: 4, Seed: 1, Metrics: reg})
	opts.metrics = reg
	if opts.maxQueue == 0 {
		opts.maxQueue = 64
	}
	return newServer(p, opts), p, reg
}

// TestServeMetricsMatchesStats is the PR's acceptance property at the HTTP
// layer: after driving work through the service, the /metrics exposition
// reports exactly the counts /api/v1/stats (and printStats) report.
func TestServeMetricsMatchesStats(t *testing.T) {
	s, p, _ := telemetryServer(t, serverOptions{})
	h := s.handler()

	if code, body := get(t, h, "/api/v1/profile?workload=crc32/small"); code != http.StatusOK {
		t.Fatalf("profile status %d: %s", code, body)
	}
	// A second request hits the in-memory cache, moving the hit counters.
	if code, body := get(t, h, "/api/v1/profile?workload=crc32/small"); code != http.StatusOK {
		t.Fatalf("profile status %d: %s", code, body)
	}

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d: %s", code, body)
	}
	cs := p.CacheStats()
	for _, line := range []string{
		fmt.Sprintf("synth_pipeline_cache_hits_total %d", cs.Hits),
		fmt.Sprintf("synth_pipeline_cache_misses_total %d", cs.Misses),
		fmt.Sprintf(`synth_pipeline_stage_computed_total{stage="profile"} %d`, cs.ComputedFor(pipeline.StageProfile)),
		fmt.Sprintf(`synth_pipeline_stage_computed_total{stage="compile"} %d`, cs.ComputedFor(pipeline.StageCompile)),
		`synth_http_requests_total{class="2xx",route="/api/v1/profile"} 2`,
		// The scrape observes itself executing.
		"synth_http_in_flight 1",
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("exposition missing %q", line)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}

// TestServeMetricsAuthExempt pins the auth boundary: /metrics (like
// /healthz) answers without the bearer token, while pprof — when mounted —
// stays behind it.
func TestServeMetricsAuthExempt(t *testing.T) {
	s, _, _ := telemetryServer(t, serverOptions{token: "s3cret", pprofEnabled: true})
	h := s.handler()

	for path, want := range map[string]int{
		"/metrics":            http.StatusOK,
		"/healthz":            http.StatusOK,
		"/api/v1/workloads":   http.StatusUnauthorized,
		"/debug/pprof/":       http.StatusUnauthorized,
		"/debug/pprof/symbol": http.StatusUnauthorized,
	} {
		if code, body := get(t, h, path); code != want {
			t.Errorf("GET %s without token = %d, want %d: %s", path, code, want, body)
		}
	}

	req := httptest.NewRequest("GET", "/debug/pprof/", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("authorized pprof index = %d, want 200", rec.Code)
	}
}

// TestServePprofGating pins that the profiling endpoints exist only behind
// the -pprof flag.
func TestServePprofGating(t *testing.T) {
	off, _, _ := telemetryServer(t, serverOptions{})
	if code, _ := get(t, off.handler(), "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof without -pprof = %d, want 404", code)
	}
	on, _, _ := telemetryServer(t, serverOptions{pprofEnabled: true})
	if code, body := get(t, on.handler(), "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof with -pprof = %d, want 200: %s", code, body)
	}
}

// TestServeClusterStatusTelemetry pins the status endpoint's telemetry
// section on a queue-backed (but poolless) node.
func TestServeClusterStatusTelemetry(t *testing.T) {
	dir := t.TempDir()
	q, err := openQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out, errBuf strings.Builder
	if c := run(context.Background(), []string{"dispatch", "-suite", "tiny", "-seed", "1", "-store", dir}, &out, &errBuf); c != 0 {
		t.Fatalf("dispatch exited %d: %s", c, errBuf.String())
	}
	s, _, _ := telemetryServer(t, serverOptions{queue: q})
	code, body := get(t, s.handler(), "/api/v1/cluster/status")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var st struct {
		Pending   int `json:"pending"`
		Telemetry *struct {
			QueueDepth  int `json:"queue_depth"`
			WorkersBusy int `json:"workers_busy"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad status JSON: %v\n%s", err, body)
	}
	if st.Telemetry == nil {
		t.Fatalf("status lacks telemetry section: %s", body)
	}
	if st.Telemetry.QueueDepth != st.Pending {
		t.Errorf("queue_depth = %d, want pending %d", st.Telemetry.QueueDepth, st.Pending)
	}
}

// TestCLITraceFlag runs `synth profile -trace` end to end and checks the
// written file is a Chrome trace with one span per computed stage.
func TestCLITraceFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out, errBuf strings.Builder
	code := run(context.Background(),
		[]string{"profile", "-workload", "crc32/small", "-trace", path}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("profile -trace exited %d: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q has phase %q, want X", ev.Name, ev.Ph)
		}
		seen[ev.Name] = true
	}
	// A cold profile run computes the profile chain; each computed stage is
	// one span.
	for _, stage := range []string{"parse", "check", "compile", "profile"} {
		if !seen[stage] {
			t.Errorf("trace lacks a %q span (events: %v)", stage, seen)
		}
	}
}
