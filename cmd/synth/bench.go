package main

// synth bench — the per-PR performance ratchet. It runs the cold
// profile+validate path of a suite through an in-memory pipeline (no
// store, so nothing is served from disk), times every stage, measures the
// interpreter's raw instructions-per-second on a fixed workload, and emits
// the numbers as a stable JSON report (BENCH_quick.json in CI). With
// -check it compares the report against a committed baseline and fails on
// regressions beyond -max-regress, the way coreblocks tracks Fmax per PR.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/compiler"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// benchSchema versions the bench report format.
const benchSchema = 1

// benchReport is the JSON emitted by `synth bench` and consumed by its
// -check mode. All wall times are seconds; MIPS is millions of executed
// virtual instructions per wall second.
type benchReport struct {
	Schema    int    `json:"schema"`
	Suite     string `json:"suite"`
	Workers   int    `json:"workers"`
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	// Per-stage cold wall times over the whole suite, in pipeline order.
	CompileSec    float64 `json:"compileSec"`
	ProfileSec    float64 `json:"profileSec"`
	SynthesizeSec float64 `json:"synthesizeSec"`
	ValidateSec   float64 `json:"validateSec"`
	TotalSec      float64 `json:"totalSec"`

	// ProfileDyn is the dynamic instructions interpreted by the profile
	// stage; ProfileMIPS is its throughput (hooked interpretation plus
	// cache simulation and stream collection).
	ProfileDyn  uint64  `json:"profileDyn"`
	ProfileMIPS float64 `json:"profileMIPS"`

	// VM microbenchmark: raw interpreter throughput on one fixed workload
	// with no hook (the validate/calibration path) and with a counting
	// hook (the profiling path's lower bound).
	VMWorkload  string  `json:"vmWorkload"`
	VMDyn       uint64  `json:"vmDyn"`
	VMFastMIPS  float64 `json:"vmFastMIPS"`
	VMHookMIPS  float64 `json:"vmHookMIPS"`
}

func cmdBench(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	suite := fs.String("suite", "quick", "workload suite: tiny, quick, or full")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	check := fs.String("check", "", "compare against a baseline JSON report and fail on regression")
	maxRegress := fs.Float64("max-regress", 0.20, "allowed fractional regression against the baseline")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", experiments.CloneSeed, "clone synthesis seed")
	trace := fs.String("trace", "", "write computed pipeline stages as a Chrome trace_event JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ws, err := suiteWorkloads(*suite)
	if err != nil {
		return err
	}
	var tracer *telemetry.Tracer
	if *trace != "" {
		tracer = telemetry.NewTracer(traceSpanCapacity)
		defer func() {
			if err := exportTrace(tracer, *trace); err != nil {
				fmt.Fprintf(stderr, "synth: trace: %v\n", err)
			}
		}()
	}
	rep, err := runBench(ctx, ws, *suite, *workers, *seed, tracer, stderr)
	if err != nil {
		return err
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := writeIndentedJSON(w, rep); err != nil {
		return err
	}
	if *check != "" {
		base, err := loadBenchReport(*check)
		if err != nil {
			return err
		}
		return compareBench(rep, base, *maxRegress, stderr)
	}
	return nil
}

// runBench executes the cold benchmark and builds the report.
func runBench(ctx context.Context, ws []*workloads.Workload, suite string, workers int, seed int64, tracer *telemetry.Tracer, stderr io.Writer) (*benchReport, error) {
	p := pipeline.New(pipeline.Options{Workers: workers, Seed: seed, Tracer: tracer})
	rep := &benchReport{
		Schema:    benchSchema,
		Suite:     suite,
		Workers:   p.Workers(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}

	stage := func(name string, f func(context.Context, *workloads.Workload) error) (float64, error) {
		start := time.Now()
		_, err := pipeline.Map(ctx, p, ws, func(ctx context.Context, w *workloads.Workload) (struct{}, error) {
			return struct{}{}, f(ctx, w)
		})
		sec := time.Since(start).Seconds()
		if err != nil {
			return 0, fmt.Errorf("bench %s stage: %w", name, err)
		}
		fmt.Fprintf(stderr, "bench: %-10s %6.2fs\n", name, sec)
		return sec, nil
	}

	var err error
	if rep.CompileSec, err = stage("compile", func(ctx context.Context, w *workloads.Workload) error {
		_, err := p.Compile(ctx, w, isa.AMD64, compiler.O0)
		return err
	}); err != nil {
		return nil, err
	}
	if rep.ProfileSec, err = stage("profile", func(ctx context.Context, w *workloads.Workload) error {
		_, err := p.Profile(ctx, w)
		return err
	}); err != nil {
		return nil, err
	}
	// Sum the interpreted volume from the (now cached) profiles serially.
	for _, w := range ws {
		prof, err := p.Profile(ctx, w)
		if err != nil {
			return nil, err
		}
		rep.ProfileDyn += prof.TotalDyn
	}
	if rep.ProfileSec > 0 {
		rep.ProfileMIPS = float64(rep.ProfileDyn) / rep.ProfileSec / 1e6
	}
	if rep.SynthesizeSec, err = stage("synthesize", func(ctx context.Context, w *workloads.Workload) error {
		_, err := p.Synthesize(ctx, w)
		return err
	}); err != nil {
		return nil, err
	}
	if rep.ValidateSec, err = stage("validate", p.Validate); err != nil {
		return nil, err
	}
	rep.TotalSec = rep.CompileSec + rep.ProfileSec + rep.SynthesizeSec + rep.ValidateSec

	if err := benchVM(ctx, p, rep, stderr); err != nil {
		return nil, err
	}
	return rep, nil
}

// vmBenchBudget bounds the VM microbenchmark's executions.
const vmBenchBudget = 30_000_000

// benchVM measures raw interpreter throughput on one fixed workload, with
// and without an instrumentation hook.
func benchVM(ctx context.Context, p *pipeline.Pipeline, rep *benchReport, stderr io.Writer) error {
	const name = "crc32/small"
	w := workloads.ByName(name)
	if w == nil {
		return fmt.Errorf("bench: workload %s not found", name)
	}
	prog, err := p.Compile(ctx, w, isa.AMD64, compiler.O0)
	if err != nil {
		return err
	}
	// The workload is much shorter than the measurement budget, so run it
	// repeatedly (fresh VM each time, as profiling does) until the budget's
	// worth of instructions has been interpreted.
	run := func(hook vm.Hook) (uint64, float64, error) {
		var dyn uint64
		var sec float64
		for dyn < vmBenchBudget {
			m := vm.New(prog)
			if err := w.Setup(m); err != nil {
				return 0, 0, err
			}
			start := time.Now()
			res, err := m.Run(vm.Config{MaxInstrs: vmBenchBudget, Hook: hook})
			sec += time.Since(start).Seconds()
			if err != nil {
				if t, ok := err.(*vm.Trap); !ok || t.Reason != vm.TrapBudgetExhausted {
					return 0, 0, err
				}
			}
			dyn += res.DynInstrs
		}
		return dyn, sec, nil
	}
	// Interpreter throughput on a shared machine is noisy, so take the
	// fastest of a few trials: best-of measures what the code can do and is
	// far less sensitive to a neighbour stealing the core mid-trial.
	const vmBenchTrials = 3
	best := func(hook vm.Hook) (dyn uint64, sec float64, err error) {
		for i := 0; i < vmBenchTrials; i++ {
			d, s, err := run(hook)
			if err != nil {
				return 0, 0, err
			}
			if i == 0 || float64(d)/s > float64(dyn)/sec {
				dyn, sec = d, s
			}
		}
		return dyn, sec, nil
	}
	dyn, fastSec, err := best(nil)
	if err != nil {
		return err
	}
	var count uint64
	hookDyn, hookSec, err := best(func(ev *vm.Event) { count++ })
	if err != nil {
		return err
	}
	if count != vmBenchTrials*hookDyn {
		return fmt.Errorf("bench: hook saw %d events for %d trials of %d instructions",
			count, vmBenchTrials, hookDyn)
	}
	rep.VMWorkload = name
	rep.VMDyn = dyn
	if fastSec > 0 {
		rep.VMFastMIPS = float64(dyn) / fastSec / 1e6
	}
	if hookSec > 0 {
		rep.VMHookMIPS = float64(hookDyn) / hookSec / 1e6
	}
	fmt.Fprintf(stderr, "bench: vm fast %.1f MIPS, hooked %.1f MIPS (%s, %d instrs)\n",
		rep.VMFastMIPS, rep.VMHookMIPS, name, dyn)
	return nil
}

// loadBenchReport reads a bench JSON report from disk.
func loadBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != benchSchema {
		return nil, fmt.Errorf("%s: bench schema %d, want %d", path, rep.Schema, benchSchema)
	}
	return &rep, nil
}

// compareBench fails when the fresh report regresses beyond the allowed
// fraction against the baseline: wall time up, or throughput down.
func compareBench(fresh, base *benchReport, maxRegress float64, stderr io.Writer) error {
	if fresh.Suite != base.Suite {
		return fmt.Errorf("bench: suite %q vs baseline %q", fresh.Suite, base.Suite)
	}
	var failures []string
	slower := func(name string, got, want float64) {
		if want <= 0 {
			return
		}
		ratio := got / want
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSION"
			failures = append(failures, name)
		}
		fmt.Fprintf(stderr, "bench check: %-14s %8.2f vs baseline %8.2f (%.2fx) %s\n",
			name, got, want, ratio, status)
	}
	faster := func(name string, got, want float64) {
		if want <= 0 {
			return
		}
		ratio := got / want
		status := "ok"
		if ratio < 1-maxRegress {
			status = "REGRESSION"
			failures = append(failures, name)
		}
		fmt.Fprintf(stderr, "bench check: %-14s %8.1f vs baseline %8.1f (%.2fx) %s\n",
			name, got, want, ratio, status)
	}
	slower("totalSec", fresh.TotalSec, base.TotalSec)
	slower("profileSec", fresh.ProfileSec, base.ProfileSec)
	slower("validateSec", fresh.ValidateSec, base.ValidateSec)
	faster("profileMIPS", fresh.ProfileMIPS, base.ProfileMIPS)
	faster("vmFastMIPS", fresh.VMFastMIPS, base.VMFastMIPS)
	faster("vmHookMIPS", fresh.VMHookMIPS, base.VMHookMIPS)
	if len(failures) > 0 {
		return fmt.Errorf("bench: regression beyond %.0f%% in: %v", maxRegress*100, failures)
	}
	return nil
}
