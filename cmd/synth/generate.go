package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cluster"
	"repro/internal/generate"
)

// cmdGenerate runs directed workload generation: analyze the baseline
// suite's feature-space coverage, sample -n synthetic profiles aimed at
// the holes, realize each through Synthesize → Validate, and report
// requested vs. achieved features. With -dispatch the realization fans out
// over the cluster queue instead of the local worker pool.
func cmdGenerate(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth generate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	n := fs.Int("n", 0, "number of synthetic workloads to generate (overrides -spec)")
	specFile := fs.String("spec", "", "generation spec JSON file (see docs/generate.md)")
	suite := fs.String("suite", "", "baseline suite whose coverage to extend: tiny, quick, or full (overrides -spec; default quick)")
	name := fs.String("name", "", "corpus name (overrides -spec; default gen)")
	jsonOut := fs.Bool("json", false, "emit the full generation report as JSON")
	stats := fs.Bool("stats", false, "print artifact-cache statistics to stderr afterwards")
	outDir := fs.String("out", "", "write each accepted clone's HLC source (and report.json) into this directory")
	dispatch := fs.Bool("dispatch", false, "enqueue one cluster job per point instead of realizing locally (requires -store)")
	wait := fs.Bool("wait", false, "with -dispatch: block until the queue drains, then print the report")
	force := fs.Bool("force", false, "with -dispatch: re-enqueue jobs even if already done")
	ttl := fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "lease expiry for reclaiming crashed workers' jobs (with -dispatch -wait)")
	poll := fs.Duration("poll", cluster.DefaultPoll, "queue polling interval (with -dispatch -wait)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer c.writeTrace(stderr)

	spec, err := buildGenerateSpec(fs, &c, *specFile, *n, *suite, *name)
	if err != nil {
		return err
	}

	if *dispatch {
		return dispatchGenerate(ctx, &c, spec, *wait, *force, *ttl, *poll, stdout, stderr)
	}

	p, err := c.pipeline()
	if err != nil {
		return err
	}
	rep, err := generate.Run(ctx, p, spec)
	if err != nil {
		return err
	}
	if err := renderGenerateReport(stdout, rep, *jsonOut); err != nil {
		return err
	}
	if *outDir != "" {
		if err := writeCorpus(*outDir, rep); err != nil {
			return err
		}
	}
	if *stats {
		printStats(stderr, p)
	}
	return nil
}

// buildGenerateSpec assembles the effective generation spec: the -spec
// file (if any) overridden by explicit flags. The sampler seed follows the
// CLI determinism contract (docs/generate.md): an explicit -seed always
// wins; otherwise a seed from the spec file is kept; otherwise the common
// default seed applies. Same seed + same spec ⇒ byte-identical corpus.
func buildGenerateSpec(fs *flag.FlagSet, c *commonFlags, specFile string, n int, suite, name string) (*generate.Spec, error) {
	spec := &generate.Spec{}
	if specFile != "" {
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		if spec, err = generate.ParseSpec(data); err != nil {
			return nil, err
		}
	}
	if n > 0 {
		spec.N = n
	}
	if spec.N == 0 {
		spec.N = 8
	}
	if suite != "" {
		spec.Suite = suite
	}
	if name != "" {
		spec.Name = name
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet || spec.Seed == 0 {
		spec.Seed = c.seed
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// renderGenerateReport prints a generation report: the full JSON document
// under -json, otherwise a fixed-format text summary.
func renderGenerateReport(w io.Writer, rep *generate.Report, asJSON bool) error {
	if asJSON {
		return writeIndentedJSON(w, rep)
	}
	fmt.Fprintf(w, "generate %s (spec %s, seed %d): %d accepted, %d rejected\n",
		rep.Name, rep.SpecDigest, rep.Seed, rep.Accepted, rep.Rejected)
	fmt.Fprintf(w, "baseline coverage: %d points, min pair distance %.4f, mean %.4f (closest: %s ~ %s)\n",
		rep.Baseline.Points, rep.Baseline.MinPairDist, rep.Baseline.MeanPairDist,
		rep.Baseline.ClosestPair[0], rep.Baseline.ClosestPair[1])
	fmt.Fprintf(w, "generated separation: min %.4f, feature error mean %.4f max %.4f\n",
		rep.MinSeparation, rep.MeanErr, rep.MaxErr)
	for _, pt := range rep.Points {
		if pt.Reject != "" {
			fmt.Fprintf(w, "  %-12s base=%-20s REJECTED: %s\n", pt.Name, pt.Base, pt.Reject)
			continue
		}
		fmt.Fprintf(w, "  %-12s base=%-20s axes=%v err=%.4f sep=%.4f dyn=%d\n",
			pt.Name, pt.Base, pt.Axes, pt.Err, pt.Separation, pt.CloneDyn)
	}
	return nil
}

// writeCorpus materializes a report's accepted clones as .hlc files plus
// the report itself, making the generated corpus a directory artifact.
func writeCorpus(dir string, rep *generate.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, pt := range rep.Points {
		if pt.Reject != "" || pt.Source == "" {
			continue
		}
		if err := os.WriteFile(filepath.Join(dir, pt.Name+".hlc"), []byte(pt.Source), 0o644); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "report.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return writeIndentedJSON(f, rep)
}

// dispatchGenerate enqueues one cluster job per sampled point, sharing the
// dispatch/wait plumbing of `synth dispatch`. After the queue drains (with
// -wait), the closing generate.Run finds every synthesis warm in the
// shared store and only computes the report.
func dispatchGenerate(ctx context.Context, c *commonFlags, spec *generate.Spec, wait, force bool, ttl, poll time.Duration, stdout, stderr io.Writer) error {
	q, err := openQueue(c.storeDir)
	if err != nil {
		return err
	}
	p, err := c.pipelineWith(q.Store())
	if err != nil {
		return err
	}
	cspec := cluster.Spec{
		Suite:        spec.Suite,
		Seed:         c.seed,
		ProfileISA:   c.isaName,
		ProfileLevel: c.level,
		Generate:     spec,
	}
	out, err := cluster.Dispatch(ctx, q, p, cspec, cluster.DispatchOptions{Force: force})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "synth generate: %d point jobs: %d enqueued, %d already done, %d already queued\n",
		out.Total, out.Enqueued, out.AlreadyDone, out.AlreadyQueued)
	if !wait {
		return nil
	}
	last := cluster.Counts{Pending: -1}
	results, err := cluster.Wait(ctx, q, cluster.WaitOptions{
		TTL:  ttl,
		Poll: poll,
		Progress: func(cc cluster.Counts, total int) {
			if cc != last {
				fmt.Fprintf(stderr, "synth generate: %d/%d done, %d pending, %d leased\n",
					cc.Done, total, cc.Pending, cc.Leased)
				last = cc
			}
		},
	})
	if err != nil {
		return err
	}
	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
			fmt.Fprintf(stderr, "synth generate: job %s FAILED: %s\n", r.Job.Workload, r.Err)
		}
	}
	rep, err := generate.Run(ctx, p, spec)
	if err != nil {
		return err
	}
	if err := renderGenerateReport(stdout, rep, false); err != nil {
		return err
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d point jobs failed", failed, len(results))
	}
	return nil
}
