package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// runWorker runs `synth work` in-process and reports its exit code and
// stderr, standing in for a separate worker process (run() shares no state
// between invocations beyond the store directory, exactly like processes).
func runWorker(t *testing.T, dir, id string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"work", "-store", dir, "-id", id, "-lease-ttl", "5s", "-poll", "20ms"}, &out, &errb)
	return code, errb.String()
}

// storeEntries maps every artifact entry under a store root (the cluster
// queue excluded) to its bytes, for byte-identity comparison.
func storeEntries(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "cluster" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		entries[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// sumComputed totals the per-stage Computed counters over a queue's
// recorded results.
func sumComputed(t *testing.T, dir string) pipeline.CacheStats {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cluster.OpenQueue(st)
	if err != nil {
		t.Fatal(err)
	}
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	var sum pipeline.CacheStats
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("job %s failed: %s", r.Job.Workload, r.Err)
		}
		sum = sum.Add(r.Stats)
	}
	return sum
}

// assertNoDuplicatedWork checks the fabric acceptance property against the
// solo reference: summed per-stage Computed equals the single-process cold
// run's (zero duplicated computation) and the stores hold byte-identical
// artifacts.
func assertNoDuplicatedWork(t *testing.T, topology, dir string, soloSum pipeline.CacheStats, soloEntries map[string]string) {
	t.Helper()
	sum := sumComputed(t, dir)
	for st := pipeline.Stage(0); int(st) < pipeline.NumStages; st++ {
		if got, want := sum.ComputedFor(st), soloSum.ComputedFor(st); got != want {
			t.Errorf("stage %v: %s computed %d artifacts, solo computed %d", st, topology, got, want)
		}
	}
	entries := storeEntries(t, dir)
	if len(soloEntries) == 0 || len(soloEntries) != len(entries) {
		t.Fatalf("store entry counts differ: solo %d, %s %d", len(soloEntries), topology, len(entries))
	}
	for rel, data := range soloEntries {
		if entries[rel] != data {
			t.Errorf("store entry %s differs between solo and %s runs", rel, topology)
		}
	}
}

// resultsByWorker maps worker ID to acked-job count for one queue.
func resultsByWorker(t *testing.T, dir string) map[string]int {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cluster.OpenQueue(st)
	if err != nil {
		t.Fatal(err)
	}
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	byWorker := map[string]int{}
	for _, r := range results {
		byWorker[r.Worker]++
	}
	return byWorker
}

// TestClusterShardedQuickSuite is the fabric's acceptance property, checked
// over two topologies against one solo cold-run reference: (a) three
// `synth work` processes sharing a store directory, and (b) a `synth serve`
// node with an embedded supervised pool plus one remote worker that reaches
// the node's store only over HTTP — no shared filesystem. Both must
// complete a dispatched quick suite with zero duplicated stage computations
// (summed per-stage Computed equals the solo run's) and leave stores
// byte-identical to the solo one.
func TestClusterShardedQuickSuite(t *testing.T) {
	dispatch := func(dir string) {
		var out, errb bytes.Buffer
		if c := run(context.Background(), []string{"dispatch", "-suite", "quick", "-seed", "1", "-store", dir}, &out, &errb); c != 0 {
			t.Fatalf("dispatch exited %d: %s", c, errb.String())
		}
	}

	// Reference: one worker drains the whole suite cold.
	solo := t.TempDir()
	dispatch(solo)
	if code, errOut := runWorker(t, solo, "solo"); code != 0 {
		t.Fatalf("solo worker exited %d: %s", code, errOut)
	}
	soloSum := sumComputed(t, solo)
	if soloSum.ComputedFor(pipeline.StageProfile) == 0 || soloSum.ComputedFor(pipeline.StageSynthesize) == 0 {
		t.Fatalf("solo run computed nothing: %+v", soloSum)
	}
	soloEntries := storeEntries(t, solo)

	t.Run("three-local-workers", func(t *testing.T) {
		shared := t.TempDir()
		dispatch(shared)
		var wg sync.WaitGroup
		codes := make([]int, 3)
		errs := make([]string, 3)
		ids := []string{"w1", "w2", "w3"}
		for i, id := range ids {
			wg.Add(1)
			go func(i int, id string) {
				defer wg.Done()
				codes[i], errs[i] = runWorker(t, shared, id)
			}(i, id)
		}
		// A dispatcher waiting on the same queue sees the drain complete.
		var waitOut, waitErr bytes.Buffer
		if c := run(context.Background(), []string{"dispatch", "-suite", "quick", "-seed", "1", "-store", shared, "-wait", "-poll", "20ms"}, &waitOut, &waitErr); c != 0 {
			t.Fatalf("dispatch -wait exited %d: %s", c, waitErr.String())
		}
		wg.Wait()
		for i, code := range codes {
			if code != 0 {
				t.Fatalf("worker %s exited %d: %s", ids[i], code, errs[i])
			}
		}
		if !strings.Contains(waitOut.String(), "jobs done") {
			t.Errorf("dispatch -wait printed no report:\n%s", waitOut.String())
		}
		assertNoDuplicatedWork(t, "3 workers", shared, soloSum, soloEntries)
		if byWorker := resultsByWorker(t, shared); len(byWorker) < 2 {
			t.Errorf("expected ≥2 workers to share the suite, got %v", byWorker)
		}
	})

	t.Run("fabric-serve-plus-remote", func(t *testing.T) {
		dir := t.TempDir()
		dispatch(dir)

		// The serving node: store + queue + embedded single-worker pool
		// (Max 1 keeps per-job stat deltas partitioned so the strict
		// no-duplication sum holds; pool scaling has its own tests).
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		q, err := cluster.OpenQueue(st)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := cluster.NewSupervisor(q, cluster.SupervisorOptions{
			Node: "servenode", Min: 1, Max: 1,
			Poll: 20 * time.Millisecond, Interval: 50 * time.Millisecond,
			PipelineWorkers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		cf := commonFlags{workers: 2, seed: 1, isaName: isa.AMD64.Name}
		p, err := cf.pipelineWith(st)
		if err != nil {
			t.Fatal(err)
		}
		const token = "fabric-secret"
		srv := httptest.NewServer(newServer(p, serverOptions{
			token: token, queue: q, storeBackend: st, sup: sup,
		}).handler())
		defer srv.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		supDone := make(chan error, 1)
		go func() { supDone <- sup.Run(ctx) }()

		// The remote node: a `synth work` process whose only path to the
		// queue and artifacts is the serve node's HTTP store.
		var wout, werrb bytes.Buffer
		code := run(context.Background(), []string{"work",
			"-remote", srv.URL, "-token", token, "-id", "remote1",
			"-lease-ttl", "5s", "-poll", "20ms"}, &wout, &werrb)
		if code != 0 {
			t.Fatalf("remote worker exited %d: %s", code, werrb.String())
		}

		// The remote worker exits on convergence; the node may still be
		// acking its last job, so poll the queue before stopping the pool.
		m, err := q.Manifest()
		if err != nil || m == nil {
			t.Fatalf("manifest: %v %v", m, err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for {
			c, err := q.Counts()
			if err == nil && c.Done >= m.Total && c.Leased == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("fabric never converged: %+v, %v", c, err)
			}
			time.Sleep(20 * time.Millisecond)
		}

		// The embedded pool's status rides the cluster endpoint.
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/api/v1/cluster/status", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var status clusterStatus
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster status: http %d, %v", resp.StatusCode, err)
		}
		if status.Node == nil || status.Node.Node != "servenode" || status.Node.Workers < 1 {
			t.Fatalf("status carries no embedded-pool snapshot: %+v", status.Node)
		}

		cancel()
		<-supDone

		assertNoDuplicatedWork(t, "serve+remote fabric", dir, soloSum, soloEntries)
		byWorker := resultsByWorker(t, dir)
		nodeJobs, remoteJobs := 0, byWorker["remote1"]
		for id, n := range byWorker {
			if strings.HasPrefix(id, "servenode-") {
				nodeJobs += n
			}
		}
		if nodeJobs == 0 || remoteJobs == 0 {
			t.Errorf("work was not shared across the fabric: %v", byWorker)
		}
	})
}

// TestClusterLeaseReclaimAfterCrash simulates a worker that claims a job
// and dies without heartbeating: a live worker must reclaim the expired
// lease and finish the suite.
func TestClusterLeaseReclaimAfterCrash(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"dispatch", "-suite", "tiny", "-seed", "1", "-store", dir}, &out, &errb); c != 0 {
		t.Fatalf("dispatch exited %d: %s", c, errb.String())
	}

	// The "crashed" worker: claims a job, never heartbeats, never acks.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cluster.OpenQueue(st)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := q.Claim("crasher")
	if err != nil || crashed == nil {
		t.Fatalf("crasher claim: %v, %v", crashed, err)
	}

	// A live worker with a short TTL drains the rest, then reclaims the
	// crasher's expired lease and finishes its job too.
	var wout, werr bytes.Buffer
	code := run(context.Background(), []string{"work", "-store", dir, "-id", "rescuer",
		"-lease-ttl", "250ms", "-poll", "20ms"}, &wout, &werr)
	if code != 0 {
		t.Fatalf("rescuer exited %d: %s", code, werr.String())
	}

	m, err := q.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	c, err := q.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if c.Done != m.Total || c.Pending != 0 || c.Leased != 0 {
		t.Fatalf("queue did not converge after crash: %+v (total %d)", c, m.Total)
	}
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	rescued := false
	for _, r := range results {
		if r.Err != "" {
			t.Errorf("job %s failed: %s", r.Job.Workload, r.Err)
		}
		if r.Job.ID() == crashed.Job.ID() {
			rescued = r.Worker == "rescuer"
		}
	}
	if !rescued {
		t.Error("the crashed worker's job was not re-executed by the rescuer")
	}
}
