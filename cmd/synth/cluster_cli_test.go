package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// runWorker runs `synth work` in-process and reports its exit code and
// stderr, standing in for a separate worker process (run() shares no state
// between invocations beyond the store directory, exactly like processes).
func runWorker(t *testing.T, dir, id string) (int, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"work", "-store", dir, "-id", id, "-lease-ttl", "5s", "-poll", "20ms"}, &out, &errb)
	return code, errb.String()
}

// storeEntries maps every artifact entry under a store root (the cluster
// queue excluded) to its bytes, for byte-identity comparison.
func storeEntries(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "cluster" {
				return filepath.SkipDir
			}
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		entries[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

// sumComputed totals the per-stage Computed counters over a queue's
// recorded results.
func sumComputed(t *testing.T, dir string) pipeline.CacheStats {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cluster.OpenQueue(st)
	if err != nil {
		t.Fatal(err)
	}
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	var sum pipeline.CacheStats
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("job %s failed: %s", r.Job.Workload, r.Err)
		}
		sum = sum.Add(r.Stats)
	}
	return sum
}

// TestClusterShardedQuickSuite is the PR's acceptance property: three
// `synth work` processes sharing a store complete a dispatched quick suite
// with zero duplicated stage computations versus a single-process cold run
// — the summed per-stage Computed counters are equal — and the two stores
// hold byte-identical artifacts.
func TestClusterShardedQuickSuite(t *testing.T) {
	dispatch := func(dir string) {
		var out, errb bytes.Buffer
		if c := run(context.Background(), []string{"dispatch", "-suite", "quick", "-seed", "1", "-store", dir}, &out, &errb); c != 0 {
			t.Fatalf("dispatch exited %d: %s", c, errb.String())
		}
	}

	// Reference: one worker drains the whole suite cold.
	solo := t.TempDir()
	dispatch(solo)
	if code, errOut := runWorker(t, solo, "solo"); code != 0 {
		t.Fatalf("solo worker exited %d: %s", code, errOut)
	}
	soloSum := sumComputed(t, solo)
	if soloSum.ComputedFor(pipeline.StageProfile) == 0 || soloSum.ComputedFor(pipeline.StageSynthesize) == 0 {
		t.Fatalf("solo run computed nothing: %+v", soloSum)
	}

	// Same dispatch, three concurrent workers sharing a fresh store.
	shared := t.TempDir()
	dispatch(shared)
	var wg sync.WaitGroup
	codes := make([]int, 3)
	errs := make([]string, 3)
	ids := []string{"w1", "w2", "w3"}
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			codes[i], errs[i] = runWorker(t, shared, id)
		}(i, id)
	}
	// A dispatcher waiting on the same queue sees the drain complete.
	var waitOut, waitErr bytes.Buffer
	if c := run(context.Background(), []string{"dispatch", "-suite", "quick", "-seed", "1", "-store", shared, "-wait", "-poll", "20ms"}, &waitOut, &waitErr); c != 0 {
		t.Fatalf("dispatch -wait exited %d: %s", c, waitErr.String())
	}
	wg.Wait()
	for i, code := range codes {
		if code != 0 {
			t.Fatalf("worker %s exited %d: %s", ids[i], code, errs[i])
		}
	}
	if !strings.Contains(waitOut.String(), "jobs done") {
		t.Errorf("dispatch -wait printed no report:\n%s", waitOut.String())
	}

	// Zero duplicated computation: the shards' summed per-stage Computed
	// equals the single-process cold run's.
	sharedSum := sumComputed(t, shared)
	for st := pipeline.Stage(0); int(st) < pipeline.NumStages; st++ {
		if got, want := sharedSum.ComputedFor(st), soloSum.ComputedFor(st); got != want {
			t.Errorf("stage %v: 3 workers computed %d artifacts, solo computed %d", st, got, want)
		}
	}

	// Byte-identical artifacts: same entry set, same bytes.
	soloEntries, sharedEntries := storeEntries(t, solo), storeEntries(t, shared)
	if len(soloEntries) == 0 || len(soloEntries) != len(sharedEntries) {
		t.Fatalf("store entry counts differ: solo %d, shared %d", len(soloEntries), len(sharedEntries))
	}
	for rel, data := range soloEntries {
		if sharedEntries[rel] != data {
			t.Errorf("store entry %s differs between solo and sharded runs", rel)
		}
	}

	// The work was actually shared: at least two workers acked jobs.
	st, _ := store.Open(shared)
	q, _ := cluster.OpenQueue(st)
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	byWorker := map[string]int{}
	for _, r := range results {
		byWorker[r.Worker]++
	}
	if len(byWorker) < 2 {
		t.Errorf("expected ≥2 workers to share the suite, got %v", byWorker)
	}
}

// TestClusterLeaseReclaimAfterCrash simulates a worker that claims a job
// and dies without heartbeating: a live worker must reclaim the expired
// lease and finish the suite.
func TestClusterLeaseReclaimAfterCrash(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"dispatch", "-suite", "tiny", "-seed", "1", "-store", dir}, &out, &errb); c != 0 {
		t.Fatalf("dispatch exited %d: %s", c, errb.String())
	}

	// The "crashed" worker: claims a job, never heartbeats, never acks.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cluster.OpenQueue(st)
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := q.Claim("crasher")
	if err != nil || crashed == nil {
		t.Fatalf("crasher claim: %v, %v", crashed, err)
	}

	// A live worker with a short TTL drains the rest, then reclaims the
	// crasher's expired lease and finishes its job too.
	var wout, werr bytes.Buffer
	code := run(context.Background(), []string{"work", "-store", dir, "-id", "rescuer",
		"-lease-ttl", "250ms", "-poll", "20ms"}, &wout, &werr)
	if code != 0 {
		t.Fatalf("rescuer exited %d: %s", code, werr.String())
	}

	m, err := q.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	c, err := q.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if c.Done != m.Total || c.Pending != 0 || c.Leased != 0 {
		t.Fatalf("queue did not converge after crash: %+v (total %d)", c, m.Total)
	}
	results, err := q.Results()
	if err != nil {
		t.Fatal(err)
	}
	rescued := false
	for _, r := range results {
		if r.Err != "" {
			t.Errorf("job %s failed: %s", r.Job.Workload, r.Err)
		}
		if r.Job.ID() == crashed.Job.ID() {
			rescued = r.Worker == "rescuer"
		}
	}
	if !rescued {
		t.Error("the crashed worker's job was not re-executed by the rescuer")
	}
}
