package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/generate"
)

// testGenSpec is the generation spec the CLI tests share: two points off
// the tiny suite, cheap enough for unit tests.
const testGenSpec = `{"name": "cli-gen", "suite": "tiny", "n": 2, "seed": 9}`

// writeGenSpec drops a generation spec into a temp file.
func writeGenSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "gen.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGenerateCLIDeterminism pins the CLI determinism contract: the same
// spec and seed run cold in two separate stores emit byte-identical JSON
// reports, and a warm rerun over either store recomputes nothing.
func TestGenerateCLIDeterminism(t *testing.T) {
	args := func(dir string) []string {
		return []string{"generate", "-suite", "tiny", "-n", "3", "-seed", "5", "-store", dir, "-json"}
	}
	first := t.TempDir()
	var out1, err1 bytes.Buffer
	if c := run(context.Background(), args(first), &out1, &err1); c != 0 {
		t.Fatalf("first cold run exited %d: %s", c, err1.String())
	}
	second := t.TempDir()
	var out2, err2 bytes.Buffer
	if c := run(context.Background(), args(second), &out2, &err2); c != 0 {
		t.Fatalf("second cold run exited %d: %s", c, err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cold runs in separate stores disagree:\n%s\n%s", out1.String(), out2.String())
	}
	var rep generate.Report
	if err := json.Unmarshal(out1.Bytes(), &rep); err != nil {
		t.Fatalf("JSON output does not decode: %v", err)
	}
	if rep.Seed != 5 || len(rep.Points) != 3 {
		t.Errorf("decoded report: seed=%d points=%d", rep.Seed, len(rep.Points))
	}

	var warmOut, warmErr bytes.Buffer
	warmArgs := append(args(first), "-stats")
	if c := run(context.Background(), warmArgs, &warmOut, &warmErr); c != 0 {
		t.Fatalf("warm rerun exited %d: %s", c, warmErr.String())
	}
	if warmOut.String() != out1.String() {
		t.Error("warm rerun printed a different report")
	}
	if !strings.Contains(warmErr.String(), "compile=0 profile=0 synthesize=0 validate=0 simulate=0 generate=0") {
		t.Fatalf("warm rerun recomputed artifacts:\n%s", warmErr.String())
	}
}

// TestGenerateCLISeedContract pins the seed-resolution order: an explicit
// -seed beats the spec file's seed, which beats the default.
func TestGenerateCLISeedContract(t *testing.T) {
	spec := writeGenSpec(t, testGenSpec)
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"generate", "-spec", spec, "-json"}, &out, &errb); c != 0 {
		t.Fatalf("spec-seed run exited %d: %s", c, errb.String())
	}
	var rep generate.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 9 {
		t.Errorf("spec file seed ignored: report seed %d, want 9", rep.Seed)
	}
	out.Reset()
	errb.Reset()
	if c := run(context.Background(), []string{"generate", "-spec", spec, "-seed", "5", "-json"}, &out, &errb); c != 0 {
		t.Fatalf("flag-seed run exited %d: %s", c, errb.String())
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seed != 5 {
		t.Errorf("explicit -seed did not win: report seed %d, want 5", rep.Seed)
	}
}

// TestGenerateCLICorpusAndErrors covers the -out corpus directory and the
// spec-handling error paths.
func TestGenerateCLICorpusAndErrors(t *testing.T) {
	spec := writeGenSpec(t, testGenSpec)
	dir := filepath.Join(t.TempDir(), "corpus")
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"generate", "-spec", spec, "-out", dir}, &out, &errb); c != 0 {
		t.Fatalf("generate -out exited %d: %s", c, errb.String())
	}
	if !strings.Contains(out.String(), "generate cli-gen") {
		t.Errorf("text report missing header:\n%s", out.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep generate.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for _, pt := range rep.Points {
		if pt.Reject != "" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, pt.Name+".hlc"))
		if err != nil {
			t.Errorf("accepted point %s has no corpus file: %v", pt.Name, err)
		} else if string(src) != pt.Source {
			t.Errorf("corpus file %s.hlc differs from the report source", pt.Name)
		}
	}

	badSpec := writeGenSpec(t, `{"n": 2, "typo": 1}`)
	for _, args := range [][]string{
		{"generate", "-spec", "/does/not/exist.json"},
		{"generate", "-spec", badSpec},
		{"generate", "-n", "100000"},
		{"generate", "-suite", "huge"},
		{"generate", "-dispatch"}, // dispatch without store
	} {
		out.Reset()
		errb.Reset()
		if c := run(context.Background(), args, &out, &errb); c == 0 {
			t.Errorf("%v: expected a nonzero exit", args)
		}
	}
}

// TestClusterGenerateSharded dispatches a generation run's points through
// the cluster queue, drains it with a worker, and checks the dispatcher's
// closing aggregation finds every synthesis warm in the shared store.
func TestClusterGenerateSharded(t *testing.T) {
	spec := writeGenSpec(t, testGenSpec)
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"generate", "-spec", spec, "-store", dir, "-dispatch"}, &out, &errb); c != 0 {
		t.Fatalf("generate -dispatch exited %d: %s", c, errb.String())
	}
	if !strings.Contains(errb.String(), "2 point jobs") {
		t.Fatalf("dispatch did not enqueue 2 point jobs:\n%s", errb.String())
	}
	if code, errOut := runWorker(t, dir, "gen-worker"); code != 0 {
		t.Fatalf("worker exited %d: %s", code, errOut)
	}
	// The worker realized every point; the local closing run only computes
	// the report artifact itself.
	out.Reset()
	errb.Reset()
	if c := run(context.Background(), []string{"generate", "-spec", spec, "-store", dir, "-stats"}, &out, &errb); c != 0 {
		t.Fatalf("post-drain generate exited %d: %s", c, errb.String())
	}
	if !strings.Contains(errb.String(), "compile=0 profile=0 synthesize=0 validate=0 simulate=0") {
		t.Fatalf("post-drain run recomputed pipeline artifacts:\n%s", errb.String())
	}
	if !strings.Contains(out.String(), "2 accepted, 0 rejected") {
		t.Fatalf("post-drain report:\n%s", out.String())
	}
}

// TestExploreConsumesGeneratedCorpus wires -generate into a sweep: the
// generated corpus joins the evaluation workloads, and combining -generate
// with -dispatch is refused.
func TestExploreConsumesGeneratedCorpus(t *testing.T) {
	sweep := writeSpec(t)
	spec := writeGenSpec(t, `{"name": "xg", "suite": "tiny", "n": 2, "seed": 9}`)
	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"explore", "-spec", sweep, "-generate", spec, "-seed", "1", "-json"}, &out, &errb); c != 0 {
		t.Fatalf("explore -generate exited %d: %s", c, errb.String())
	}
	var rep explore.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	gen := 0
	for _, w := range rep.Workloads {
		if strings.HasPrefix(w, "gen/xg-") {
			gen++
		}
	}
	if gen == 0 {
		t.Errorf("sweep evaluated no generated workloads: %v", rep.Workloads)
	}
	if len(rep.Workloads) != 3+gen {
		t.Errorf("sweep workloads = %v, want tiny suite plus %d generated", rep.Workloads, gen)
	}

	out.Reset()
	errb.Reset()
	if c := run(context.Background(), []string{"explore", "-spec", sweep, "-generate", spec, "-store", t.TempDir(), "-dispatch"}, &out, &errb); c == 0 {
		t.Error("explore -generate -dispatch was accepted")
	}
}

// TestServeGenerate exercises POST /api/v1/generate against the library
// engine: same spec, same pipeline, byte-equal report.
func TestServeGenerate(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	req := httptest.NewRequest("POST", "/api/v1/generate", strings.NewReader(testGenSpec))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var got generate.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("response does not decode: %v", err)
	}

	spec, err := generate.ParseSpec([]byte(testGenSpec))
	if err != nil {
		t.Fatal(err)
	}
	want, err := generate.Run(context.Background(), p, spec)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(got)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("endpoint report differs from library:\nendpoint %s\nlibrary  %s", gotJSON, wantJSON)
	}

	// Method and body validation.
	code, body := get(t, h, "/api/v1/generate")
	if code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d: %s", code, body)
	}
	req = httptest.NewRequest("POST", "/api/v1/generate", strings.NewReader(`{"n": 0}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad spec: status %d: %s", rec.Code, rec.Body.String())
	}
}
