package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/explore"
	"repro/internal/generate"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// cmdExplore runs a design-space exploration sweep: a declarative spec
// (file or built-in preset) expands into machine-configuration design
// points, every (point, workload, level) cell simulates the original and
// its synthetic clone through the cached Simulate stage, and the ranked
// report — per-point CPI error, speedup-prediction error, Pareto
// frontier — lands on stdout. With -dispatch the sweep's cells are
// instead sharded through the store's cluster queue for `synth work`
// fleets; -wait blocks for the drain and then aggregates the report from
// the warm store.
func cmdExplore(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	specFile := fs.String("spec", "", "sweep specification JSON file (see docs/explore.md)")
	preset := fs.String("preset", "", "built-in sweep preset (calibration); alternative to -spec")
	genFile := fs.String("generate", "", "generation spec JSON file whose accepted corpus joins the sweep's workloads (local runs only)")
	top := fs.Int("top", 0, "ranked-table rows to print (0 = the spec's topK, default 10)")
	asJSON := fs.Bool("json", false, "emit the full report as JSON instead of the table")
	stats := fs.Bool("stats", false, "print artifact-cache statistics to stderr afterwards")
	dispatch := fs.Bool("dispatch", false, "enqueue the sweep into the store's cluster queue instead of simulating locally")
	wait := fs.Bool("wait", false, "with -dispatch: block until the queue drains, then print the report")
	force := fs.Bool("force", false, "with -dispatch: re-enqueue jobs even when their artifacts are already stored")
	ttl := fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "lease expiry for reclaiming crashed workers' jobs (with -wait)")
	poll := fs.Duration("poll", cluster.DefaultPoll, "queue polling interval (with -wait)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	defer c.writeTrace(stderr)

	sw, err := loadSweep(*specFile, *preset)
	if err != nil {
		return err
	}
	if *top > 0 {
		sw.Spec.TopK = *top
	}

	var p *pipeline.Pipeline
	if *genFile != "" && *dispatch {
		// Workers rebuild their pipelines from the dispatch manifest and
		// resolve workloads by name from the static registry; a generated
		// corpus only exists in the dispatching process, so it cannot ride
		// a cluster sweep.
		return fmt.Errorf("-generate is local-only; it cannot be combined with -dispatch")
	}
	if *dispatch {
		if c.storeDir == "" {
			return fmt.Errorf("-dispatch needs -store (the cluster queue lives under the shared store)")
		}
		q, err := openQueue(c.storeDir)
		if err != nil {
			return err
		}
		if p, err = c.pipelineWith(q.Store()); err != nil {
			return err
		}
		spec := sw.ClusterSpec(c.seed, c.isaName, c.level)
		out, err := cluster.Dispatch(ctx, q, p, spec, cluster.DispatchOptions{Force: *force})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "synth explore: %d jobs (%d points × %d levels per workload): %d enqueued, %d deduped from store, %d already done, %d already queued\n",
			out.Total, len(sw.Points), len(sw.Levels),
			out.Enqueued, out.Deduped, out.AlreadyDone, out.AlreadyQueued)
		if !*wait {
			return nil
		}
		if _, err := cluster.Wait(ctx, q, cluster.WaitOptions{TTL: *ttl, Poll: *poll}); err != nil {
			return err
		}
	} else {
		if p, err = c.pipeline(); err != nil {
			return err
		}
	}

	if *genFile != "" {
		if err := addGeneratedWorkloads(ctx, p, sw, *genFile, stderr); err != nil {
			return err
		}
	}

	rep, err := explore.Run(ctx, p, sw)
	if err != nil {
		return err
	}
	if *asJSON {
		if err := writeIndentedJSON(stdout, rep); err != nil {
			return err
		}
	} else {
		rep.Print(stdout)
	}
	if *stats {
		printStats(stderr, p)
	}
	return nil
}

// addGeneratedWorkloads realizes the generation spec in genFile through the
// sweep's pipeline and appends every accepted clone to the sweep's workload
// set, so one `synth explore -generate` invocation evaluates design points
// against the baseline suite plus the directed synthetic corpus. Generated
// workloads are registered before the sweep fans out; with a warm store the
// generation step computes nothing.
func addGeneratedWorkloads(ctx context.Context, p *pipeline.Pipeline, sw *explore.Sweep, genFile string, stderr io.Writer) error {
	data, err := os.ReadFile(genFile)
	if err != nil {
		return err
	}
	spec, err := generate.ParseSpec(data)
	if err != nil {
		return fmt.Errorf("%s: %w", genFile, err)
	}
	corpus, err := generate.Corpus(ctx, p, spec)
	if err != nil {
		return err
	}
	if len(corpus) == 0 {
		return fmt.Errorf("%s: generation spec produced no accepted workloads", genFile)
	}
	for _, w := range corpus {
		if err := workloads.Register(w); err != nil {
			return err
		}
		sw.Workloads = append(sw.Workloads, w)
	}
	fmt.Fprintf(stderr, "synth explore: generated corpus %s joins the sweep: %d workloads\n", spec.Name, len(corpus))
	return nil
}

// loadSweep resolves the -spec/-preset pair into a validated sweep.
func loadSweep(specFile, preset string) (*explore.Sweep, error) {
	switch {
	case specFile != "" && preset != "":
		return nil, fmt.Errorf("-spec and -preset are mutually exclusive")
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		sw, err := explore.ParseSpec(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specFile, err)
		}
		return sw, nil
	case preset != "":
		spec, err := explore.Preset(preset)
		if err != nil {
			return nil, err
		}
		return spec.Resolve()
	}
	return nil, fmt.Errorf("missing -spec FILE or -preset NAME")
}
