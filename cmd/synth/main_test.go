package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

// TestExperimentsMatchesLibrary verifies the CLI acceptance property: the
// rows `synth experiments` renders are exactly the rows the library API
// produces for the same suite and seed.
func TestExperimentsMatchesLibrary(t *testing.T) {
	var cliOut, cliErr bytes.Buffer
	code := run(context.Background(),
		[]string{"experiments", "-suite", "tiny", "-only", "table2,fig4", "-workers", "4"},
		&cliOut, &cliErr)
	if code != 0 {
		t.Fatalf("synth experiments exited %d: %s", code, cliErr.String())
	}

	r := experiments.NewRunner(pipeline.New(pipeline.Options{Seed: experiments.CloneSeed}))
	var tiny []*workloads.Workload
	for _, n := range []string{"crc32/small", "dijkstra/small", "fft/small1"} {
		tiny = append(tiny, workloads.ByName(n))
	}
	ctx := context.Background()
	var lib bytes.Buffer
	t2, err := r.TableII(ctx, tiny)
	if err != nil {
		t.Fatal(err)
	}
	t2.Print(&lib)
	fmt.Fprintln(&lib)
	f4, err := r.Fig4(ctx, tiny)
	if err != nil {
		t.Fatal(err)
	}
	f4.Print(&lib)
	fmt.Fprintln(&lib)

	if cliOut.String() != lib.String() {
		t.Errorf("CLI output differs from library output.\n--- CLI ---\n%s\n--- library ---\n%s",
			cliOut.String(), lib.String())
	}
}

// TestCLIErrors covers the argument-validation paths.
func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"profile", "-workload", "no/such"},
		{"profile"},
		{"synthesize", "-workload", "crc32/small", "-isa", "z80"},
		{"experiments", "-suite", "nope"},
		{"experiments", "-only", "fig99"},
		{"profile", "-workload", "crc32/small", "-O", "9"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if code := run(context.Background(), args, &out, &errBuf); code == 0 {
			t.Errorf("args %v: expected nonzero exit", args)
		}
	}
}

// TestWorkloadsListsFullSuite sanity-checks the workloads subcommand.
func TestWorkloadsListsFullSuite(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(context.Background(), []string{"workloads"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	for _, want := range []string{"crc32/small", "fft/small1", "susan/large3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("workload listing missing %s", want)
		}
	}
}
