package main

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/generate"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// server is the HTTP face of one shared pipeline Runner: every request —
// however many are in flight — submits jobs to the same artifact cache, so
// concurrent clients coalesce onto single computations and a populated
// store (or a warm process) answers without recomputing anything. The
// response bytes for profiles and clone sources are exactly what the
// library API and the CLI produce. Expensive endpoints sit behind a
// bounded admission queue (429 beyond it), and with a token configured
// every /api/v1 route requires bearer authentication.
type server struct {
	p    *pipeline.Pipeline
	r    *experiments.Runner
	opts serverOptions
	lim  *limiter
	// jobSeconds records the wall-clock duration of every admitted
	// expensive-endpoint request; its running mean prices the Retry-After
	// hint shed clients receive.
	jobSeconds *telemetry.Histogram
}

// serverOptions configures the HTTP layer around the shared pipeline.
type serverOptions struct {
	// token, when non-empty, is the shared secret every /api/v1 request
	// must present as "Authorization: Bearer <token>".
	token string
	// maxInflight bounds concurrently executing expensive requests
	// (0 = 2× the pipeline's worker count); maxQueue bounds how many more
	// may wait for a slot before requests are shed with 429. maxQueue 0
	// means shed immediately whenever every slot is busy — it is a real
	// setting, not a sentinel.
	maxInflight int
	maxQueue    int
	// queue, when non-nil, exposes the store's cluster job queue on
	// /api/v1/cluster/status.
	queue *cluster.Queue
	// storeBackend, when non-nil, is served on /api/v1/store/ so remote
	// `synth work -remote` nodes can share this node's store and queue
	// without a shared filesystem.
	storeBackend store.Backend
	// sup, when non-nil, is the embedded worker pool whose status rides
	// along on /api/v1/cluster/status.
	sup *cluster.Supervisor
	// metrics is the node's telemetry registry, exposed on GET /metrics
	// (auth-exempt, like /healthz) and fed by the per-route HTTP
	// middleware. newServer creates one when nil, so the endpoint always
	// answers.
	metrics *telemetry.Registry
	// pprofEnabled mounts net/http/pprof under /debug/pprof/. Unlike
	// /metrics the profiling endpoints sit behind auth: heap and CPU
	// profiles leak far more than counters do.
	pprofEnabled bool
}

// newServer wraps a pipeline for HTTP serving.
func newServer(p *pipeline.Pipeline, opts serverOptions) *server {
	if opts.maxInflight <= 0 {
		opts.maxInflight = 2 * p.Workers()
	}
	if opts.maxQueue < 0 {
		opts.maxQueue = 0
	}
	if opts.metrics == nil {
		opts.metrics = telemetry.NewRegistry()
	}
	return &server{
		p:    p,
		r:    experiments.NewRunner(p),
		opts: opts,
		lim:  newLimiter(opts.maxInflight, opts.maxQueue),
		jobSeconds: opts.metrics.Histogram("synth_job_seconds",
			"Wall-clock seconds of admitted expensive-endpoint jobs.",
			telemetry.DefaultLatencyBuckets),
	}
}

// handler builds the service's route table: cheap introspection endpoints
// are direct, expensive pipeline endpoints go through the admission
// limiter, every route is wrapped in the telemetry middleware, and the
// whole API sits behind the auth check.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.Handler) {
		mux.Handle(pattern, s.instrumented(pattern, h))
	}
	route("/healthz", http.HandlerFunc(s.handleHealthz))
	route("/metrics", http.HandlerFunc(s.handleMetrics))
	route("/api/v1/workloads", http.HandlerFunc(s.handleWorkloads))
	route("/api/v1/profile", s.limited(s.handleProfile))
	route("/api/v1/synthesize", s.limited(s.handleSynthesize))
	route("/api/v1/consolidate", s.limited(s.handleConsolidate))
	route("/api/v1/experiments", s.limited(s.handleExperiments))
	route("/api/v1/explore", s.limited(s.handleExplore))
	route("/api/v1/generate", s.limited(s.handleGenerate))
	route("/api/v1/batch/synthesize", s.limited(s.handleBatchSynthesize))
	route("/api/v1/cluster/status", http.HandlerFunc(s.handleClusterStatus))
	route("/api/v1/stats", http.HandlerFunc(s.handleStats))
	if s.opts.storeBackend != nil {
		// Store ops are cheap I/O, so they bypass the admission limiter —
		// a busy pipeline must not starve the fabric's coordination traffic —
		// but sit behind auth like every other /api/v1 route.
		route("/api/v1/store/", http.StripPrefix("/api/v1/store", store.NewHandler(s.opts.storeBackend)))
	}
	if s.opts.pprofEnabled {
		// The profiling endpoints stay auth-required and unmetered; pprof's
		// own handlers manage their response lifecycle (streaming CPU
		// profiles), so no middleware between them and the client.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.authenticated(mux)
}

// handleMetrics serves the registry in Prometheus text exposition format.
// Like /healthz it is reachable without the bearer token: scrapers are
// infrastructure, and the counters deliberately contain no payload data.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.opts.metrics.WritePrometheus(w)
}

// statusRecorder captures the status code a handler writes, for the
// middleware's status-class label. An unwritten status is the implicit 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrumented wraps one route in the telemetry middleware: request count
// by status class, latency histogram, and a server-wide in-flight gauge.
func (s *server) instrumented(routeName string, h http.Handler) http.Handler {
	reg := s.opts.metrics
	seconds := reg.Histogram("synth_http_request_seconds",
		"HTTP request latency, by route.", telemetry.DefaultLatencyBuckets, "route", routeName)
	inFlight := reg.Gauge("synth_http_in_flight", "HTTP requests currently executing.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		inFlight.Add(-1)
		seconds.ObserveSince(start)
		reg.Counter("synth_http_requests_total", "HTTP requests served, by route and status class.",
			"route", routeName, "class", fmt.Sprintf("%dxx", rec.status/100)).Inc()
	})
}

// authenticated enforces the shared-secret token on every route except the
// liveness probe and the metrics scrape. Comparison is constant-time; a
// missing or wrong token is 401 with a WWW-Authenticate challenge.
func (s *server) authenticated(h http.Handler) http.Handler {
	if s.opts.token == "" {
		return h
	}
	want := []byte("Bearer " + s.opts.token)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
			h.ServeHTTP(w, r)
			return
		}
		got := []byte(r.Header.Get("Authorization"))
		if len(got) != len(want) || subtle.ConstantTimeCompare(got, want) != 1 {
			w.Header().Set("WWW-Authenticate", `Bearer realm="synth"`)
			httpError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// limiter is the expensive-endpoint admission control: maxInflight
// requests execute, up to maxQueue more wait for a slot, and everything
// beyond that is shed immediately with 429 — bounded queueing instead of
// unbounded goroutine pile-up when simulation farms drive the service
// harder than the pipeline can absorb.
type limiter struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

// newLimiter builds a limiter with the given execution and queue bounds.
func newLimiter(inflight, queue int) *limiter {
	return &limiter{slots: make(chan struct{}, inflight), maxQueue: int64(queue)}
}

// acquire takes an execution slot, waiting in the bounded queue if
// necessary. It reports false when the queue is full (shed the request) or
// the request was canceled while waiting.
func (l *limiter) acquire(ctx context.Context) bool {
	select {
	case l.slots <- struct{}{}:
		return true
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return false
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// release returns an execution slot.
func (l *limiter) release() { <-l.slots }

// limited wraps an expensive handler in the admission limiter. Shed
// requests carry a Retry-After hint derived from the observed mean job
// duration and the current backlog, instead of a flat "1" that makes
// clients hammer a queue that drains in minutes.
func (s *server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.lim.acquire(r.Context()) {
			if r.Context().Err() != nil {
				return // client gone; nothing useful to write
			}
			avg := 0.0
			if n := s.jobSeconds.Count(); n > 0 {
				avg = s.jobSeconds.Sum() / float64(n)
			}
			ra := retryAfterSeconds(avg, int(s.lim.queued.Load()), cap(s.lim.slots))
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			httpError(w, http.StatusTooManyRequests, "request queue full (%d executing, %d queued); retry later",
				cap(s.lim.slots), s.lim.maxQueue)
			return
		}
		start := time.Now()
		defer func() {
			s.jobSeconds.ObserveSince(start)
			s.lim.release()
		}()
		h(w, r)
	}
}

// retryAfterSeconds estimates how long a shed client should wait before
// retrying: the backlog ahead of it (everything queued plus the slot it
// still needs) divided across the execution slots, priced at the mean
// observed job duration. With no job history the estimate is one second,
// and the result is clamped to [1, 60] so a few pathological jobs never
// push clients into effectively-never retry loops.
func retryAfterSeconds(avgJobSeconds float64, queued, slots int) int {
	if slots < 1 {
		slots = 1
	}
	if avgJobSeconds <= 0 {
		return 1
	}
	est := int(math.Ceil(avgJobSeconds * float64(queued+1) / float64(slots)))
	return min(max(est, 1), 60)
}

// httpError renders an error as a JSON body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON renders v indented, matching the CLI's JSON style.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// parseBoolParam interprets an optional boolean query parameter: absent is
// false, otherwise strconv.ParseBool semantics (so synthesize=0 and
// synthesize=false mean no).
func parseBoolParam(v string) (bool, error) {
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("bad boolean parameter %q", v)
	}
	return b, nil
}

// queryWorkload resolves the request's workload parameter.
func queryWorkload(r *http.Request) (*workloads.Workload, int, error) {
	name := r.URL.Query().Get("workload")
	if name == "" {
		return nil, http.StatusBadRequest, errors.New("missing workload parameter")
	}
	w := workloads.ByName(name)
	if w == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown workload %q", name)
	}
	return w, 0, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Bench string `json:"bench"`
	}
	var out []entry
	for _, wl := range workloads.All() {
		out = append(out, entry{Name: wl.Name, Bench: wl.Bench})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

// handleProfile answers with the workload's statistical profile — the same
// bytes `synth profile` writes to stdout.
func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	wl, status, err := queryWorkload(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	prof, err := s.p.Profile(r.Context(), wl)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// synthesizeResponse is the JSON envelope of a synthesize request.
type synthesizeResponse struct {
	Workload string      `json:"workload"`
	Seed     int64       `json:"seed"`
	Report   core.Report `json:"report"`
	Source   string      `json:"source"`
}

// handleSynthesize answers with the workload's synthesized clone. With
// format=source the body is the raw HLC source — the same bytes `synth
// synthesize` writes to stdout; the default JSON envelope carries the
// source plus the synthesis report.
func (s *server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	wl, status, err := queryWorkload(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	cl, err := s.p.Synthesize(r.Context(), wl)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, synthesizeResponse{
			Workload: wl.Name,
			Seed:     s.p.Seed(),
			Report:   cl.Report,
			Source:   cl.Source,
		})
	case "source":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, cl.Source)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or source)", format)
	}
}

// handleConsolidate merges the profiles of the comma-separated workloads
// parameter into one proxy profile (core.Consolidate) and answers with the
// merged profile JSON, or — with synthesize=1 — the consolidated clone.
func (s *server) handleConsolidate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var names []string
	for _, n := range strings.Split(q.Get("workloads"), ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		httpError(w, http.StatusBadRequest, "missing workloads parameter (comma-separated names)")
		return
	}
	name := q.Get("name")
	if name == "" {
		name = "consolidated"
	}
	doSynth, err := parseBoolParam(q.Get("synthesize"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var wls []*workloads.Workload
	for _, n := range names {
		wl := workloads.ByName(n)
		if wl == nil {
			httpError(w, http.StatusNotFound, "unknown workload %q", n)
			return
		}
		wls = append(wls, wl)
	}
	profs, err := pipeline.Map(r.Context(), s.p, wls,
		func(ctx context.Context, wl *workloads.Workload) (*profile.Profile, error) {
			return s.p.Profile(ctx, wl)
		})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	merged, err := core.Consolidate(name, profs...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !doSynth {
		var buf bytes.Buffer
		if err := merged.Save(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
		return
	}
	cl, err := s.p.SynthesizeProfile(r.Context(), merged)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, synthesizeResponse{
		Workload: name,
		Seed:     s.p.Seed(),
		Report:   cl.Report,
		Source:   cl.Source,
	})
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	suite := q.Get("suite")
	if suite == "" {
		suite = "quick"
	}
	ws, err := suiteWorkloads(suite)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	selected, err := parseOnly(q.Get("only"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := renderExperiments(r.Context(), s.r, ws, selected, &buf); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"suite":  suite,
		"only":   q.Get("only"),
		"output": buf.String(),
	})
}

// handleExplore evaluates a design-space sweep: the POST body is the
// same JSON spec `synth explore -spec` consumes, and the response is the
// full ranked report. The whole sweep occupies one admission slot, and
// every simulation is a cached pipeline artifact, so repeated or
// overlapping sweep requests recompute only what no earlier request (or
// the store) has seen.
func (s *server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST a sweep spec JSON body (see docs/explore.md)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec body: %v", err)
		return
	}
	sw, err := explore.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, err := explore.Run(r.Context(), s.p, sw)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone mid-sweep
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, rep)
}

// handleGenerate runs directed workload generation: the POST body is the
// same JSON spec `synth generate -spec` consumes, and the response is the
// full generate.Report (requested vs. achieved features per point,
// coverage before and after). The whole run occupies one admission slot;
// the report and every underlying synthesis are cached pipeline
// artifacts, so a repeated spec is answered from the store.
func (s *server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST a generation spec JSON body (see docs/generate.md)")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad spec body: %v", err)
		return
	}
	spec, err := generate.ParseSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rep, err := generate.Run(r.Context(), s.p, spec)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone mid-run
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, rep)
}

// batchRequest is the POST body of /api/v1/batch/synthesize: an explicit
// workload list, a suite name, or both (the union, deduplicated).
type batchRequest struct {
	Workloads []string `json:"workloads"`
	Suite     string   `json:"suite"`
}

// batchItem is one workload's outcome in a batch response. Failures are
// per-item — one broken workload does not void the rest of the batch.
type batchItem struct {
	Workload string       `json:"workload"`
	Report   *core.Report `json:"report,omitempty"`
	Source   string       `json:"source,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// batchResponse is the envelope of a batch synthesize call.
type batchResponse struct {
	Seed    int64       `json:"seed"`
	Results []batchItem `json:"results"`
	Failed  int         `json:"failed"`
}

// handleBatchSynthesize synthesizes many clones in one request, fanned out
// on the shared pipeline's worker pool. Each source in the response is
// byte-identical to the single-workload endpoint's; item order follows the
// request. The whole batch occupies one admission slot, so a farm driving
// batches cannot starve interactive requests any worse than one request
// can.
func (s *server) handleBatchSynthesize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		httpError(w, http.StatusMethodNotAllowed, "POST a JSON body {workloads:[...]} or {suite:\"quick\"}")
		return
	}
	// A batch body is a list of names; a megabyte is already generous.
	// Without the cap, one oversized POST would buffer unbounded memory
	// while holding a single admission slot.
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	names := append([]string(nil), req.Workloads...)
	if req.Suite != "" {
		ws, err := suiteWorkloads(req.Suite)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for _, wl := range ws {
			names = append(names, wl.Name)
		}
	}
	seen := map[string]bool{}
	var wls []*workloads.Workload
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		wl := workloads.ByName(n)
		if wl == nil {
			httpError(w, http.StatusNotFound, "unknown workload %q", n)
			return
		}
		wls = append(wls, wl)
	}
	if len(wls) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch: name workloads or a suite")
		return
	}
	// Failures are captured per item, never returned, so Map cannot cancel
	// the batch's siblings.
	items, _ := pipeline.Map(r.Context(), s.p, wls,
		func(ctx context.Context, wl *workloads.Workload) (batchItem, error) {
			cl, err := s.p.Synthesize(ctx, wl)
			if err != nil {
				return batchItem{Workload: wl.Name, Error: err.Error()}, nil
			}
			rep := cl.Report
			return batchItem{Workload: wl.Name, Report: &rep, Source: cl.Source}, nil
		})
	resp := batchResponse{Seed: s.p.Seed(), Results: items}
	for _, it := range items {
		if it.Error != "" {
			resp.Failed++
		}
	}
	if err := r.Context().Err(); err != nil {
		return // client gone mid-batch
	}
	writeJSON(w, resp)
}

// handleClusterStatus reports the store's cluster job queue — totals,
// per-state counts, active workers — plus the embedded pool's supervisor
// status when one is running. 404 without a store, or before any dispatch
// when there is no embedded pool to report either.
func (s *server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if s.opts.queue == nil {
		httpError(w, http.StatusNotFound, "no cluster queue (serve started without -store)")
		return
	}
	st, err := buildClusterStatus(s.opts.queue)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if s.opts.sup != nil {
		ns := s.opts.sup.Status()
		if st == nil {
			st = &clusterStatus{} // idle node awaiting its first dispatch
		}
		st.Node = &ns
	}
	if st == nil {
		httpError(w, http.StatusNotFound, "nothing dispatched (run \"synth dispatch -store ...\")")
		return
	}
	nt := &nodeTelemetry{QueueDepth: st.Pending + st.Leased}
	if s.opts.sup != nil {
		snap := s.opts.sup.Metrics().Snapshot()
		nt.WorkersBusy = st.Node.Busy
		nt.WorkersIdle = st.Node.Workers - st.Node.Busy
		nt.JobsAcked = snap.JobsOK + snap.JobsFailed
		nt.JobsFailed = snap.JobsFailed
		nt.Jobs = snap
	}
	st.Telemetry = nt
	writeJSON(w, st)
}

// snapshotStats is the single accessor every handler reads cache
// statistics through. The snapshot is taken once per request from the
// pipeline's atomic counters; handlers must not cache or re-derive it, so
// concurrent stats reads racing batch work always see a coherent
// (point-in-time, monotone) view.
func (s *server) snapshotStats() pipeline.CacheStats {
	return s.p.CacheStats()
}

// handleStats reports the shared pipeline's artifact-cache statistics.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"cache":   s.snapshotStats(),
		"workers": s.p.Workers(),
		"seed":    s.p.Seed(),
	})
}

// cmdServe runs the HTTP service until the context is canceled.
func cmdServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	addr := fs.String("addr", "localhost:8091", "listen address")
	token := fs.String("token", "", "shared-secret bearer token required on every /api/v1 request (empty = unauthenticated)")
	maxInflight := fs.Int("max-inflight", 0, "concurrently executing expensive requests (0 = 2x worker pool)")
	maxQueue := fs.Int("max-queue", 64, "requests allowed to wait for a slot before 429s are shed (0 = shed immediately when all slots are busy)")
	node := fs.String("node", "", "node name for the embedded worker pool (default: node-<pid>)")
	poolMin := fs.Int("pool-min", 1, "embedded pool floor: workers kept alive even when the queue is idle (with -pool-max)")
	poolMax := fs.Int("pool-max", 0, "embedded pool ceiling: autoscale up to this many workers draining the cluster queue (0 = no embedded pool)")
	jobTimeout := fs.Duration("job-timeout", 0, "per-job execution bound for the embedded pool; an overrunning job is acked as failed (0 = unbounded)")
	leaseTTL := fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "lease expiry the embedded pool enforces and heartbeats within (with -pool-max)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (requires the bearer token when one is set)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := telemetry.NewRegistry()
	c.metrics = reg // the shared pipeline's stage metrics land in the node registry
	opts := serverOptions{token: *token, maxInflight: *maxInflight, maxQueue: *maxQueue,
		metrics: reg, pprofEnabled: *pprofOn}
	registerVMMetrics(reg)
	var (
		p   *pipeline.Pipeline
		err error
	)
	if c.storeDir != "" {
		if opts.queue, err = openQueue(c.storeDir); err != nil {
			return err
		}
		opts.storeBackend = opts.queue.Store()
		cluster.RegisterQueueGauges(reg, opts.queue)
		p, err = c.pipelineWith(opts.storeBackend)
	} else {
		p, err = c.pipeline()
	}
	if err != nil {
		return err
	}
	// Supervisor events from concurrent workers funnel through one writer
	// goroutine, so log lines never interleave mid-record.
	events := telemetry.NewSink(stderr, "synth serve: ")
	defer events.Close()
	var supDone chan error
	if *poolMax > 0 {
		if opts.queue == nil {
			return fmt.Errorf("-pool-max requires -store (the embedded pool drains the store's cluster queue)")
		}
		if *node == "" {
			*node = fmt.Sprintf("node-%d", os.Getpid())
		}
		opts.sup, err = cluster.NewSupervisor(opts.queue, cluster.SupervisorOptions{
			Node:            *node,
			Min:             *poolMin,
			Max:             *poolMax,
			TTL:             *leaseTTL,
			JobTimeout:      *jobTimeout,
			PipelineWorkers: c.workers,
			OnEvent:         func(e cluster.Event) { events.Emit(e) },
			Telemetry:       reg,
		})
		if err != nil {
			return err
		}
		supDone = make(chan error, 1)
		go func() { supDone <- opts.sup.Run(ctx) }()
	}
	srv := &http.Server{
		Addr:        *addr,
		Handler:     newServer(p, opts).handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
		// The admission limiter only bounds handler execution; connections
		// that never finish their headers would each pin a goroutine
		// forever without these.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	pool := "none"
	if opts.sup != nil {
		pool = fmt.Sprintf("%s %d-%d", *node, *poolMin, *poolMax)
	}
	fmt.Fprintf(stderr, "synth serve: listening on http://%s (store: %s, pool: %s)\n",
		*addr, storeDesc(c.storeDir), pool)
	err = srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-done
		if supDone != nil {
			// The serve context is canceled; wait for the pool to drain so
			// no lease outlives the process unreleased.
			<-supDone
		}
		return nil
	}
	return err
}

// registerVMMetrics exposes the process-wide interpreter counters: total
// dynamic instructions and a live MIPS gauge (the rate between scrapes).
func registerVMMetrics(reg *telemetry.Registry) {
	reg.CounterFunc("synth_vm_instrs_total",
		"Dynamic instructions executed by every VM run in this process.", vm.ExecutedInstrs)
	rate := telemetry.Rate(vm.ExecutedInstrs)
	reg.GaugeFunc("synth_vm_mips",
		"VM execution rate between scrapes, in millions of instructions per second.",
		func() float64 { return rate() / 1e6 })
}

// storeDesc renders the store configuration for the startup log line.
func storeDesc(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
