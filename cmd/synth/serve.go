package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// server is the HTTP face of one shared pipeline Runner: every request —
// however many are in flight — submits jobs to the same artifact cache, so
// concurrent clients coalesce onto single computations and a populated
// store (or a warm process) answers without recomputing anything. The
// response bytes for profiles and clone sources are exactly what the
// library API and the CLI produce.
type server struct {
	p *pipeline.Pipeline
	r *experiments.Runner
}

// newServer wraps a pipeline for HTTP serving.
func newServer(p *pipeline.Pipeline) *server {
	return &server{p: p, r: experiments.NewRunner(p)}
}

// handler builds the service's route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/api/v1/workloads", s.handleWorkloads)
	mux.HandleFunc("/api/v1/profile", s.handleProfile)
	mux.HandleFunc("/api/v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("/api/v1/consolidate", s.handleConsolidate)
	mux.HandleFunc("/api/v1/experiments", s.handleExperiments)
	mux.HandleFunc("/api/v1/stats", s.handleStats)
	return mux
}

// httpError renders an error as a JSON body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON renders v indented, matching the CLI's JSON style.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// parseBoolParam interprets an optional boolean query parameter: absent is
// false, otherwise strconv.ParseBool semantics (so synthesize=0 and
// synthesize=false mean no).
func parseBoolParam(v string) (bool, error) {
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("bad boolean parameter %q", v)
	}
	return b, nil
}

// queryWorkload resolves the request's workload parameter.
func queryWorkload(r *http.Request) (*workloads.Workload, int, error) {
	name := r.URL.Query().Get("workload")
	if name == "" {
		return nil, http.StatusBadRequest, errors.New("missing workload parameter")
	}
	w := workloads.ByName(name)
	if w == nil {
		return nil, http.StatusNotFound, fmt.Errorf("unknown workload %q", name)
	}
	return w, 0, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name  string `json:"name"`
		Bench string `json:"bench"`
	}
	var out []entry
	for _, wl := range workloads.All() {
		out = append(out, entry{Name: wl.Name, Bench: wl.Bench})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

// handleProfile answers with the workload's statistical profile — the same
// bytes `synth profile` writes to stdout.
func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	wl, status, err := queryWorkload(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	prof, err := s.p.Profile(r.Context(), wl)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := prof.Save(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
}

// synthesizeResponse is the JSON envelope of a synthesize request.
type synthesizeResponse struct {
	Workload string      `json:"workload"`
	Seed     int64       `json:"seed"`
	Report   core.Report `json:"report"`
	Source   string      `json:"source"`
}

// handleSynthesize answers with the workload's synthesized clone. With
// format=source the body is the raw HLC source — the same bytes `synth
// synthesize` writes to stdout; the default JSON envelope carries the
// source plus the synthesis report.
func (s *server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	wl, status, err := queryWorkload(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	cl, err := s.p.Synthesize(r.Context(), wl)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, synthesizeResponse{
			Workload: wl.Name,
			Seed:     s.p.Seed(),
			Report:   cl.Report,
			Source:   cl.Source,
		})
	case "source":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, cl.Source)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want json or source)", format)
	}
}

// handleConsolidate merges the profiles of the comma-separated workloads
// parameter into one proxy profile (core.Consolidate) and answers with the
// merged profile JSON, or — with synthesize=1 — the consolidated clone.
func (s *server) handleConsolidate(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var names []string
	for _, n := range strings.Split(q.Get("workloads"), ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		httpError(w, http.StatusBadRequest, "missing workloads parameter (comma-separated names)")
		return
	}
	name := q.Get("name")
	if name == "" {
		name = "consolidated"
	}
	doSynth, err := parseBoolParam(q.Get("synthesize"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var wls []*workloads.Workload
	for _, n := range names {
		wl := workloads.ByName(n)
		if wl == nil {
			httpError(w, http.StatusNotFound, "unknown workload %q", n)
			return
		}
		wls = append(wls, wl)
	}
	profs, err := pipeline.Map(r.Context(), s.p, wls,
		func(ctx context.Context, wl *workloads.Workload) (*profile.Profile, error) {
			return s.p.Profile(ctx, wl)
		})
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	merged, err := core.Consolidate(name, profs...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !doSynth {
		var buf bytes.Buffer
		if err := merged.Save(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf.Bytes())
		return
	}
	cl, err := s.p.SynthesizeProfile(r.Context(), merged)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, synthesizeResponse{
		Workload: name,
		Seed:     s.p.Seed(),
		Report:   cl.Report,
		Source:   cl.Source,
	})
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	suite := q.Get("suite")
	if suite == "" {
		suite = "quick"
	}
	ws, err := suiteWorkloads(suite)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	selected, err := parseOnly(q.Get("only"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var buf bytes.Buffer
	if err := renderExperiments(r.Context(), s.r, ws, selected, &buf); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, map[string]any{
		"suite":  suite,
		"only":   q.Get("only"),
		"output": buf.String(),
	})
}

// handleStats reports the shared pipeline's artifact-cache statistics.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"cache":   s.p.CacheStats(),
		"workers": s.p.Workers(),
		"seed":    s.p.Seed(),
	})
}

// cmdServe runs the HTTP service until the context is canceled.
func cmdServe(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	addr := fs.String("addr", "localhost:8091", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := c.pipeline()
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:        *addr,
		Handler:     newServer(p).handler(),
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(stderr, "synth serve: listening on http://%s (store: %s)\n", *addr, storeDesc(c.storeDir))
	err = srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		<-done
		return nil
	}
	return err
}

// storeDesc renders the store configuration for the startup log line.
func storeDesc(dir string) string {
	if dir == "" {
		return "memory-only"
	}
	return dir
}
