package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// This file is the CLI face of internal/cluster: `synth dispatch` is the
// coordinator, `synth work` is one worker, and `synth store-gc` maintains
// the shared store the cluster lives under. See docs/cluster.md for the
// lifecycle and failure modes.

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseLevels parses a comma-separated list of optimization level indices.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad optimization level %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// openQueue opens the job queue under a -store directory.
func openQueue(storeDir string) (*cluster.Queue, error) {
	if storeDir == "" {
		return nil, fmt.Errorf("missing -store (the cluster queue lives under the shared store)")
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return nil, err
	}
	return cluster.OpenQueue(st)
}

// cmdDispatch enumerates a suite's jobs, dedups them against the store,
// enqueues the rest, and optionally waits for the cluster to drain.
func cmdDispatch(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth dispatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var c commonFlags
	addCommon(fs, &c)
	suite := fs.String("suite", "quick", "workload suite to dispatch: tiny, quick, or full")
	isas := fs.String("isas", "", "comma-separated target ISA grid (default: the -isa profiling ISA)")
	levels := fs.String("levels", "", "comma-separated optimization level grid (default: the -O profiling level)")
	wait := fs.Bool("wait", false, "block until every job is done, then print the consolidated report")
	force := fs.Bool("force", false, "re-enqueue jobs even when their artifacts are already stored")
	ttl := fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "lease expiry for reclaiming crashed workers' jobs (with -wait)")
	poll := fs.Duration("poll", cluster.DefaultPoll, "queue polling interval (with -wait)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ws, err := suiteWorkloads(*suite)
	if err != nil {
		return err
	}
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	isaGrid := splitList(*isas)
	if len(isaGrid) == 0 {
		isaGrid = []string{c.isaName}
	}
	levelGrid, err := parseLevels(*levels)
	if err != nil {
		return err
	}
	if len(levelGrid) == 0 {
		levelGrid = []int{c.level}
	}
	spec := cluster.Spec{
		Suite:        *suite,
		Workloads:    names,
		ISAs:         isaGrid,
		Levels:       levelGrid,
		Seed:         c.seed,
		ProfileISA:   c.isaName,
		ProfileLevel: c.level,
	}
	q, err := openQueue(c.storeDir)
	if err != nil {
		return err
	}
	p, err := c.pipelineWith(q.Store())
	if err != nil {
		return err
	}
	out, err := cluster.Dispatch(ctx, q, p, spec, cluster.DispatchOptions{Force: *force})
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "synth dispatch: %d jobs (%s suite, %d ISAs × %d levels): %d enqueued, %d deduped from store, %d already done, %d already queued\n",
		out.Total, *suite, len(isaGrid), len(levelGrid),
		out.Enqueued, out.Deduped, out.AlreadyDone, out.AlreadyQueued)
	if !*wait {
		return nil
	}
	last := cluster.Counts{Pending: -1}
	results, err := cluster.Wait(ctx, q, cluster.WaitOptions{
		TTL:  *ttl,
		Poll: *poll,
		Progress: func(c cluster.Counts, total int) {
			if c != last {
				fmt.Fprintf(stderr, "synth dispatch: %d/%d done, %d pending, %d leased\n",
					c.Done, total, c.Pending, c.Leased)
				last = c
			}
		},
	})
	if err != nil {
		return err
	}
	m, err := q.Manifest()
	if err != nil {
		return err
	}
	rep := cluster.BuildReport(m, results)
	rep.Print(stdout)
	if rep.Failed > 0 {
		return fmt.Errorf("%d of %d jobs failed", rep.Failed, rep.Total)
	}
	return nil
}

// cmdWork runs one cluster worker: lease a job, execute it through a
// pipeline rebuilt from the dispatch manifest, ack the result, repeat
// until the queue converges. The queue and store come from a shared -store
// directory, or — for nodes with no shared filesystem — from a `synth
// serve` node's remote store via -remote.
func cmdWork(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "shared artifact store directory holding the job queue")
	remote := fs.String("remote", "", "base URL of a synth serve node whose store to work against (e.g. http://host:8091)")
	token := fs.String("token", "", "bearer token for the -remote node (must match its serve -token)")
	workers := fs.Int("workers", 0, "in-process worker pool size (0 = GOMAXPROCS)")
	id := fs.String("id", "", "worker ID used in leases and results (default: worker-<pid>)")
	ttl := fs.Duration("lease-ttl", cluster.DefaultLeaseTTL, "lease expiry: heartbeat budget for this worker, reclaim horizon for others")
	poll := fs.Duration("poll", cluster.DefaultPoll, "idle polling interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}
	var (
		q   *cluster.Queue
		rem *store.Remote
		err error
	)
	switch {
	case *remote != "" && *storeDir != "":
		return fmt.Errorf("-store and -remote are mutually exclusive")
	case *remote != "":
		if rem, err = store.OpenRemote(*remote, *token); err != nil {
			return err
		}
		if q, err = cluster.OpenQueue(rem); err != nil {
			return err
		}
		// Every store round-trip is a wire request here; summarize the
		// transport when the worker exits so flaky links are visible.
		defer func() {
			reqs, errs := rem.Stats().Total()
			fmt.Fprintf(stderr, "synth work %s: remote store: %d round-trips, %d transport errors\n", *id, reqs, errs)
		}()
	default:
		if q, err = openQueue(*storeDir); err != nil {
			return err
		}
	}
	m, err := q.Manifest()
	if err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("nothing dispatched yet (run \"synth dispatch\" first)")
	}
	opts, err := cluster.PipelineOptions(m.Spec)
	if err != nil {
		return err
	}
	opts.Workers = *workers
	opts.Store = q.Store()
	p := pipeline.New(opts)

	w := &cluster.Worker{
		Queue:    q,
		Pipe:     p,
		ID:       *id,
		Dispatch: m.Spec.Digest(),
		TTL:      *ttl,
		Poll:     *poll,
		OnJob: func(r cluster.Result) {
			status := "ok"
			if r.Err != "" {
				status = "FAILED: " + r.Err
			}
			fmt.Fprintf(stderr, "synth work %s: %s (%d cells) in %dms: %s\n",
				*id, r.Job.Workload, r.Job.Cells(), r.Millis, status)
		},
	}
	sum, err := w.Run(ctx)
	if err != nil {
		// Interruption and errors exit nonzero with an honest summary —
		// the queue may not be drained, and scripts trust the exit code.
		fmt.Fprintf(stderr, "synth work %s: stopped (%v), jobs=%d failed=%d\n", *id, err, sum.Jobs, sum.Failed)
		printStats(stderr, p)
		return err
	}
	fmt.Fprintf(stderr, "synth work %s: drained, jobs=%d failed=%d\n", *id, sum.Jobs, sum.Failed)
	printStats(stderr, p)
	if sum.Failed > 0 {
		return fmt.Errorf("%d jobs failed", sum.Failed)
	}
	return nil
}

// cmdStoreGC prunes old entries from a persistent artifact store.
func cmdStoreGC(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("synth store-gc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	storeDir := fs.String("store", "", "persistent artifact store directory to prune")
	maxAge := fs.Duration("max-age", 0, "evict entries older than this (0 = no age limit)")
	maxBytes := fs.Int64("max-bytes", 0, "evict oldest entries until the store fits this many bytes (0 = no size limit)")
	wipMaxAge := fs.Duration("wip-max-age", 0, "evict in-progress markers whose heartbeat is older than this (0 = leave markers alone)")
	dryRun := fs.Bool("dry-run", false, "report what would be evicted without removing anything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("missing -store")
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	stats, err := st.Prune(store.PruneOptions{MaxAge: *maxAge, MaxBytes: *maxBytes, WIPMaxAge: *wipMaxAge, DryRun: *dryRun})
	if err != nil {
		return err
	}
	mode := ""
	if *dryRun {
		mode = " (dry run)"
	}
	fmt.Fprintf(stdout, "store-gc%s: scanned %d entries (%d bytes), evicted %d (%d bytes), %d entries (%d bytes) remain\n",
		mode, stats.Scanned, stats.ScannedBytes, stats.Removed, stats.RemovedBytes,
		stats.Scanned-stats.Removed, stats.ScannedBytes-stats.RemovedBytes)
	if *wipMaxAge > 0 {
		fmt.Fprintf(stdout, "store-gc%s: scanned %d in-progress markers, evicted %d stale\n",
			mode, stats.WIPScanned, stats.WIPRemoved)
	}
	return nil
}

// clusterStatus summarizes a queue for the serve endpoint and diagnostics.
type clusterStatus struct {
	Suite   string         `json:"suite"`
	Total   int            `json:"total"`
	Pending int            `json:"pending"`
	Leased  int            `json:"leased"`
	Done    int            `json:"done"`
	Failed  int            `json:"failed"`
	Deduped int            `json:"deduped"`
	Workers map[string]int `json:"workers"` // active leases per worker
	// Node is the serving process's embedded worker pool, when one is
	// running: pool size, autoscaler bounds, and recent scaling decisions.
	Node *cluster.SupervisorStatus `json:"node,omitempty"`
	// Telemetry is the node's key telemetry snapshot — the same counters
	// /metrics exposes, JSON-shaped so dashboards need not parse the
	// Prometheus exposition. The pre-existing fields above keep their
	// meaning and wire names.
	Telemetry *nodeTelemetry `json:"telemetry,omitempty"`
}

// nodeTelemetry is the telemetry section of a cluster status response:
// queue depth, the pool's busy/idle split, and job-lifecycle counts.
type nodeTelemetry struct {
	// QueueDepth is pending + leased: work not yet concluded.
	QueueDepth int `json:"queue_depth"`
	// WorkersBusy and WorkersIdle split the embedded pool (both 0 when the
	// node runs no pool).
	WorkersBusy int `json:"workers_busy"`
	WorkersIdle int `json:"workers_idle"`
	// JobsAcked counts every job this node concluded; JobsFailed the
	// failed subset. Jobs is the full lifecycle counter set.
	JobsAcked  uint64                  `json:"jobs_acked"`
	JobsFailed uint64                  `json:"jobs_failed"`
	Jobs       cluster.MetricsSnapshot `json:"jobs"`
}

// buildClusterStatus reads a queue's current shape. It returns nil (no
// error) when nothing has been dispatched.
func buildClusterStatus(q *cluster.Queue) (*clusterStatus, error) {
	m, err := q.Manifest()
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, nil
	}
	counts, err := q.Counts()
	if err != nil {
		return nil, err
	}
	workers, err := q.Workers()
	if err != nil {
		return nil, err
	}
	results, err := q.Results()
	if err != nil {
		return nil, err
	}
	st := &clusterStatus{
		Suite:   m.Spec.Suite,
		Total:   m.Total,
		Pending: counts.Pending,
		Leased:  counts.Leased,
		Done:    counts.Done,
		Workers: workers,
	}
	for _, r := range results {
		if r.Err != "" {
			st.Failed++
		}
		if r.Deduped {
			st.Deduped++
		}
	}
	return st, nil
}
