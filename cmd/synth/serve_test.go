package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func testServer(t *testing.T) (*server, *pipeline.Pipeline) {
	t.Helper()
	p := pipeline.New(pipeline.Options{Workers: 4, Seed: 1})
	return newServer(p), p
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestServeProfileMatchesLibrary is the acceptance property: the profile
// endpoint answers byte-identical to the library API (and therefore to
// `synth profile`).
func TestServeProfileMatchesLibrary(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	code, body := get(t, h, "/api/v1/profile?workload=crc32/small")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}

	w := workloads.ByName("crc32/small")
	prof, err := p.Profile(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := prof.Save(&want); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Error("profile endpoint differs from library profile.Save bytes")
	}
}

// TestServeSynthesizeMatchesLibrary checks both response formats against
// the library clone.
func TestServeSynthesizeMatchesLibrary(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	cl, err := p.Synthesize(context.Background(), workloads.ByName("crc32/small"))
	if err != nil {
		t.Fatal(err)
	}

	code, body := get(t, h, "/api/v1/synthesize?workload=crc32/small&format=source")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if body != cl.Source {
		t.Error("format=source body differs from library clone source")
	}

	code, body = get(t, h, "/api/v1/synthesize?workload=crc32/small")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp synthesizeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != cl.Source || resp.Workload != "crc32/small" || resp.Seed != 1 {
		t.Error("JSON envelope differs from library clone")
	}
	if resp.Report.Coverage != cl.Report.Coverage {
		t.Error("JSON envelope dropped the synthesis report")
	}
}

// TestServeConcurrentRequests fires many concurrent profile and synthesize
// requests at one shared Runner and requires every response to be
// identical (the artifact cache coalesces them onto single computations).
func TestServeConcurrentRequests(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	const n = 16
	bodies := make([]string, 2*n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_, bodies[2*i] = get(t, h, "/api/v1/profile?workload=dijkstra/small")
		}(i)
		go func(i int) {
			defer wg.Done()
			_, bodies[2*i+1] = get(t, h, "/api/v1/synthesize?workload=dijkstra/small&format=source")
		}(i)
	}
	wg.Wait()
	for i := 2; i < 2*n; i += 2 {
		if bodies[i] != bodies[0] {
			t.Fatalf("profile response %d differs from response 0", i/2)
		}
		if bodies[i+1] != bodies[1] {
			t.Fatalf("synthesize response %d differs from response 0", i/2)
		}
	}
	if st := p.CacheStats(); st.ComputedFor(pipeline.StageProfile) != 1 ||
		st.ComputedFor(pipeline.StageSynthesize) != 1 {
		t.Errorf("concurrent requests did not coalesce: %+v", st)
	}
}

// TestServeExperimentsMatchesCLI checks the experiments endpoint renders
// exactly what `synth experiments` prints for the same suite.
func TestServeExperimentsMatchesCLI(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()

	code, body := get(t, h, "/api/v1/experiments?suite=tiny&only=table2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Suite  string `json:"suite"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}

	var cliOut, cliErr bytes.Buffer
	if c := run(context.Background(), []string{"experiments", "-suite", "tiny", "-only", "table2", "-seed", "1"},
		&cliOut, &cliErr); c != 0 {
		t.Fatalf("CLI exited %d: %s", c, cliErr.String())
	}
	if resp.Output != cliOut.String() {
		t.Errorf("experiments endpoint differs from CLI output.\n--- serve ---\n%s\n--- CLI ---\n%s",
			resp.Output, cliOut.String())
	}
}

// TestServeConsolidate checks the consolidate endpoint merges profiles and
// optionally synthesizes the consolidated clone.
func TestServeConsolidate(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()

	code, body := get(t, h, "/api/v1/consolidate?workloads=crc32/small,dijkstra/small&name=duo")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var merged struct {
		Workload string `json:"workload"`
		TotalDyn uint64 `json:"totalDyn"`
	}
	if err := json.Unmarshal([]byte(body), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Workload != "duo" || merged.TotalDyn == 0 {
		t.Errorf("unexpected merged profile: %+v", merged)
	}

	code, body = get(t, h, "/api/v1/consolidate?workloads=crc32/small,dijkstra/small&synthesize=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp synthesizeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Source, "void main()") {
		t.Error("consolidated clone source looks wrong")
	}
}

// TestServeStatsAndHealth covers the operational endpoints.
func TestServeStatsAndHealth(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()

	if code, body := get(t, h, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	code, body := get(t, h, "/api/v1/workloads")
	if code != http.StatusOK || !strings.Contains(body, "crc32/small") {
		t.Errorf("workloads: %d %s", code, body)
	}
	code, body = get(t, h, "/api/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var stats struct {
		Workers int `json:"workers"`
		Cache   struct {
			Hits uint64
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Errorf("stats workers = %d, want 4", stats.Workers)
	}
}

// TestServeErrors covers the request-validation paths.
func TestServeErrors(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()
	cases := []struct {
		url  string
		code int
	}{
		{"/api/v1/profile", http.StatusBadRequest},
		{"/api/v1/profile?workload=no/such", http.StatusNotFound},
		{"/api/v1/synthesize?workload=no/such", http.StatusNotFound},
		{"/api/v1/synthesize?workload=crc32/small&format=xml", http.StatusBadRequest},
		{"/api/v1/experiments?suite=bogus", http.StatusBadRequest},
		{"/api/v1/experiments?suite=tiny&only=fig99", http.StatusBadRequest},
		{"/api/v1/consolidate", http.StatusBadRequest},
		{"/api/v1/consolidate?workloads=no/such", http.StatusNotFound},
		{"/api/v1/consolidate?workloads=crc32/small&synthesize=banana", http.StatusBadRequest},
	}
	for _, c := range cases {
		code, body := get(t, h, c.url)
		if code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.url, code, c.code, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body is not JSON with an error field: %s", c.url, body)
		}
	}
}

// drainRun runs the CLI and returns stdout, requiring exit 0.
func drainRun(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("synth %s exited %d: %s", strings.Join(args, " "), code, errb.String())
	}
	return out.String()
}
