package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func testServer(t *testing.T) (*server, *pipeline.Pipeline) {
	t.Helper()
	p := pipeline.New(pipeline.Options{Workers: 4, Seed: 1})
	return newServer(p, serverOptions{maxQueue: 64}), p
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestServeProfileMatchesLibrary is the acceptance property: the profile
// endpoint answers byte-identical to the library API (and therefore to
// `synth profile`).
func TestServeProfileMatchesLibrary(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	code, body := get(t, h, "/api/v1/profile?workload=crc32/small")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}

	w := workloads.ByName("crc32/small")
	prof, err := p.Profile(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := prof.Save(&want); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Error("profile endpoint differs from library profile.Save bytes")
	}
}

// TestServeSynthesizeMatchesLibrary checks both response formats against
// the library clone.
func TestServeSynthesizeMatchesLibrary(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	cl, err := p.Synthesize(context.Background(), workloads.ByName("crc32/small"))
	if err != nil {
		t.Fatal(err)
	}

	code, body := get(t, h, "/api/v1/synthesize?workload=crc32/small&format=source")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if body != cl.Source {
		t.Error("format=source body differs from library clone source")
	}

	code, body = get(t, h, "/api/v1/synthesize?workload=crc32/small")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp synthesizeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Source != cl.Source || resp.Workload != "crc32/small" || resp.Seed != 1 {
		t.Error("JSON envelope differs from library clone")
	}
	if resp.Report.Coverage != cl.Report.Coverage {
		t.Error("JSON envelope dropped the synthesis report")
	}
}

// TestServeConcurrentRequests fires many concurrent profile and synthesize
// requests at one shared Runner and requires every response to be
// identical (the artifact cache coalesces them onto single computations).
func TestServeConcurrentRequests(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	const n = 16
	bodies := make([]string, 2*n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_, bodies[2*i] = get(t, h, "/api/v1/profile?workload=dijkstra/small")
		}(i)
		go func(i int) {
			defer wg.Done()
			_, bodies[2*i+1] = get(t, h, "/api/v1/synthesize?workload=dijkstra/small&format=source")
		}(i)
	}
	wg.Wait()
	for i := 2; i < 2*n; i += 2 {
		if bodies[i] != bodies[0] {
			t.Fatalf("profile response %d differs from response 0", i/2)
		}
		if bodies[i+1] != bodies[1] {
			t.Fatalf("synthesize response %d differs from response 0", i/2)
		}
	}
	if st := p.CacheStats(); st.ComputedFor(pipeline.StageProfile) != 1 ||
		st.ComputedFor(pipeline.StageSynthesize) != 1 {
		t.Errorf("concurrent requests did not coalesce: %+v", st)
	}
}

// TestServeExperimentsMatchesCLI checks the experiments endpoint renders
// exactly what `synth experiments` prints for the same suite.
func TestServeExperimentsMatchesCLI(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()

	code, body := get(t, h, "/api/v1/experiments?suite=tiny&only=table2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp struct {
		Suite  string `json:"suite"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}

	var cliOut, cliErr bytes.Buffer
	if c := run(context.Background(), []string{"experiments", "-suite", "tiny", "-only", "table2", "-seed", "1"},
		&cliOut, &cliErr); c != 0 {
		t.Fatalf("CLI exited %d: %s", c, cliErr.String())
	}
	if resp.Output != cliOut.String() {
		t.Errorf("experiments endpoint differs from CLI output.\n--- serve ---\n%s\n--- CLI ---\n%s",
			resp.Output, cliOut.String())
	}
}

// TestServeConsolidate checks the consolidate endpoint merges profiles and
// optionally synthesizes the consolidated clone.
func TestServeConsolidate(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()

	code, body := get(t, h, "/api/v1/consolidate?workloads=crc32/small,dijkstra/small&name=duo")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var merged struct {
		Workload string `json:"workload"`
		TotalDyn uint64 `json:"totalDyn"`
	}
	if err := json.Unmarshal([]byte(body), &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Workload != "duo" || merged.TotalDyn == 0 {
		t.Errorf("unexpected merged profile: %+v", merged)
	}

	code, body = get(t, h, "/api/v1/consolidate?workloads=crc32/small,dijkstra/small&synthesize=1")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp synthesizeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Source, "void main()") {
		t.Error("consolidated clone source looks wrong")
	}
}

// TestServeStatsAndHealth covers the operational endpoints.
func TestServeStatsAndHealth(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()

	if code, body := get(t, h, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz: %d %q", code, body)
	}
	code, body := get(t, h, "/api/v1/workloads")
	if code != http.StatusOK || !strings.Contains(body, "crc32/small") {
		t.Errorf("workloads: %d %s", code, body)
	}
	code, body = get(t, h, "/api/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var stats struct {
		Workers int `json:"workers"`
		Cache   struct {
			Hits uint64
		} `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Errorf("stats workers = %d, want 4", stats.Workers)
	}
}

// TestServeErrors covers the request-validation paths.
func TestServeErrors(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()
	cases := []struct {
		url  string
		code int
	}{
		{"/api/v1/profile", http.StatusBadRequest},
		{"/api/v1/profile?workload=no/such", http.StatusNotFound},
		{"/api/v1/synthesize?workload=no/such", http.StatusNotFound},
		{"/api/v1/synthesize?workload=crc32/small&format=xml", http.StatusBadRequest},
		{"/api/v1/experiments?suite=bogus", http.StatusBadRequest},
		{"/api/v1/experiments?suite=tiny&only=fig99", http.StatusBadRequest},
		{"/api/v1/consolidate", http.StatusBadRequest},
		{"/api/v1/consolidate?workloads=no/such", http.StatusNotFound},
		{"/api/v1/consolidate?workloads=crc32/small&synthesize=banana", http.StatusBadRequest},
	}
	for _, c := range cases {
		code, body := get(t, h, c.url)
		if code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.url, code, c.code, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body is not JSON with an error field: %s", c.url, body)
		}
	}
}

// TestServeAuthToken checks the shared-secret satellite: with -token set,
// API requests without the exact bearer token get 401, /healthz stays
// open, and a correct token passes.
func TestServeAuthToken(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	h := newServer(p, serverOptions{token: "s3cret"}).handler()

	cases := []struct {
		auth string
		code int
	}{
		{"", http.StatusUnauthorized},
		{"Bearer wrong", http.StatusUnauthorized},
		{"Bearer s3cret-but-longer", http.StatusUnauthorized},
		{"bearer s3cret", http.StatusUnauthorized}, // scheme is case-sensitive
		{"Bearer s3cret", http.StatusOK},
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", "/api/v1/workloads", nil)
		if c.auth != "" {
			req.Header.Set("Authorization", c.auth)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.code {
			t.Errorf("auth %q: status %d, want %d", c.auth, rec.Code, c.code)
		}
		if c.code == http.StatusUnauthorized && rec.Header().Get("WWW-Authenticate") == "" {
			t.Errorf("auth %q: 401 without a WWW-Authenticate challenge", c.auth)
		}
	}
	if code, body := get(t, h, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz must stay open under auth: %d %q", code, body)
	}
}

// TestServeBatchSynthesize checks the batch endpoint: every item matches
// the single-workload endpoint byte-for-byte, duplicates collapse, suites
// expand, and the whole batch coalesces onto single computations.
func TestServeBatchSynthesize(t *testing.T) {
	s, p := testServer(t)
	h := s.handler()

	post := func(body string) (int, string) {
		req := httptest.NewRequest("POST", "/api/v1/batch/synthesize", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code, rec.Body.String()
	}

	code, body := post(`{"workloads": ["crc32/small", "dijkstra/small", "crc32/small"]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp batchResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Failed != 0 || resp.Seed != 1 {
		t.Fatalf("batch envelope: %+v", resp)
	}
	for _, item := range resp.Results {
		cl, err := p.Synthesize(context.Background(), workloads.ByName(item.Workload))
		if err != nil {
			t.Fatal(err)
		}
		if item.Source != cl.Source {
			t.Errorf("batch source for %s differs from library clone", item.Workload)
		}
		if item.Report == nil || item.Report.Coverage != cl.Report.Coverage {
			t.Errorf("batch report for %s missing or wrong", item.Workload)
		}
	}
	if st := p.CacheStats(); st.ComputedFor(pipeline.StageSynthesize) != 2 {
		t.Errorf("duplicate batch entries recomputed: %+v", st)
	}

	if code, body := post(`{"suite": "tiny"}`); code != http.StatusOK {
		t.Errorf("suite batch: %d %s", code, body)
	} else {
		var r batchResponse
		if err := json.Unmarshal([]byte(body), &r); err != nil || len(r.Results) != 3 {
			t.Errorf("tiny suite batch returned %d results (%v)", len(r.Results), err)
		}
	}

	errCases := []struct {
		method, body string
		code         int
	}{
		{"GET", "", http.StatusMethodNotAllowed},
		{"POST", `{`, http.StatusBadRequest},
		{"POST", `{}`, http.StatusBadRequest},
		{"POST", `{"workloads": ["no/such"]}`, http.StatusNotFound},
		{"POST", `{"suite": "bogus"}`, http.StatusBadRequest},
	}
	for _, c := range errCases {
		req := httptest.NewRequest(c.method, "/api/v1/batch/synthesize", strings.NewReader(c.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != c.code {
			t.Errorf("%s %q: status %d, want %d (%s)", c.method, c.body, rec.Code, c.code, rec.Body.String())
		}
	}
}

// TestServeBackpressure checks the bounded admission queue: when every
// execution slot and queue position is taken, the next request is shed
// with 429 and a Retry-After hint instead of piling up.
func TestServeBackpressure(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	s := newServer(p, serverOptions{maxInflight: 1, maxQueue: 1})
	h := s.handler()

	// Occupy the only execution slot and the only queue position.
	if !s.lim.acquire(context.Background()) {
		t.Fatal("could not take the execution slot")
	}
	queued := make(chan bool)
	go func() { queued <- s.lim.acquire(context.Background()) }()
	for s.lim.queued.Load() == 0 { // wait until the queue position is held
	}

	code, body := get(t, h, "/api/v1/synthesize?workload=crc32/small")
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d: %s", code, body)
	}
	req := httptest.NewRequest("GET", "/api/v1/synthesize?workload=crc32/small", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Freeing the slot lets the queued waiter in; traffic flows again.
	s.lim.release()
	if !<-queued {
		t.Fatal("queued waiter was shed")
	}
	s.lim.release()
	if code, body := get(t, h, "/api/v1/synthesize?workload=crc32/small&format=source"); code != http.StatusOK {
		t.Fatalf("drained server answered %d: %s", code, body)
	}

	// A canceled waiter gives its queue position back.
	ctx, cancel := context.WithCancel(context.Background())
	if !s.lim.acquire(context.Background()) {
		t.Fatal("could not retake the slot")
	}
	done := make(chan bool)
	go func() { done <- s.lim.acquire(ctx) }()
	for s.lim.queued.Load() == 0 {
	}
	cancel()
	if <-done {
		t.Fatal("canceled waiter acquired a slot")
	}
	if s.lim.queued.Load() != 0 {
		t.Errorf("canceled waiter leaked a queue position: %d", s.lim.queued.Load())
	}
	s.lim.release()
}

// TestServeClusterStatus checks the cluster endpoint over a real
// dispatched queue, and its 404s without one.
func TestServeClusterStatus(t *testing.T) {
	s, _ := testServer(t)
	if code, body := get(t, s.handler(), "/api/v1/cluster/status"); code != http.StatusNotFound {
		t.Fatalf("no-store status: %d %s", code, body)
	}

	dir := t.TempDir()
	q, err := openQueue(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1, Store: q.Store()})
	withQueue := newServer(p, serverOptions{queue: q}).handler()
	if code, body := get(t, withQueue, "/api/v1/cluster/status"); code != http.StatusNotFound {
		t.Fatalf("pre-dispatch status: %d %s", code, body)
	}

	var out, errb bytes.Buffer
	if c := run(context.Background(), []string{"dispatch", "-suite", "tiny", "-seed", "1", "-store", dir}, &out, &errb); c != 0 {
		t.Fatalf("dispatch exited %d: %s", c, errb.String())
	}
	code, body := get(t, withQueue, "/api/v1/cluster/status")
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	var st clusterStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Suite != "tiny" || st.Total != 3 || st.Pending != 3 || st.Done != 0 {
		t.Fatalf("cluster status: %+v", st)
	}

	errb.Reset()
	if c := run(context.Background(), []string{"work", "-store", dir, "-id", "w1"}, &out, &errb); c != 0 {
		t.Fatalf("work exited %d: %s", c, errb.String())
	}
	code, body = get(t, withQueue, "/api/v1/cluster/status")
	if code != http.StatusOK {
		t.Fatalf("status: %d %s", code, body)
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Done != 3 || st.Pending != 0 || st.Leased != 0 || st.Failed != 0 {
		t.Fatalf("drained cluster status: %+v", st)
	}
}

// TestServeStatsConcurrentWithWork hammers the stats endpoint while
// synthesize and batch handlers are computing, so `go test -race` proves
// the snapshot accessor is synchronization-safe across batch handlers (the
// satellite fix: all stats reads go through one accessor over atomic
// counters).
func TestServeStatsConcurrentWithWork(t *testing.T) {
	s, _ := testServer(t)
	h := s.handler()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			get(t, h, "/api/v1/synthesize?workload=crc32/small")
		}()
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("POST", "/api/v1/batch/synthesize",
				strings.NewReader(`{"workloads": ["dijkstra/small", "fft/small1"]}`))
			h.ServeHTTP(httptest.NewRecorder(), req)
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				code, body := get(t, h, "/api/v1/stats")
				if code != http.StatusOK {
					t.Errorf("stats under load: %d %s", code, body)
					return
				}
			}
		}()
	}
	wg.Wait()

	code, body := get(t, h, "/api/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats after load: %d", code)
	}
	var stats struct {
		Cache pipeline.CacheStats `json:"cache"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache.ComputedFor(pipeline.StageSynthesize) != 3 {
		t.Errorf("concurrent load did not coalesce: %+v", stats.Cache)
	}
}

// drainRun runs the CLI and returns stdout, requiring exit 0.
func drainRun(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(context.Background(), args, &out, &errb); code != 0 {
		t.Fatalf("synth %s exited %d: %s", strings.Join(args, " "), code, errb.String())
	}
	return out.String()
}

// TestRetryAfterSeconds pins the backlog-pricing rule behind the 429
// Retry-After hint.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		avg           float64
		queued, slots int
		want          int
	}{
		{0, 5, 2, 1},     // no job history yet: immediate retry
		{2.0, 0, 1, 2},   // just the draining slot ahead
		{2.0, 3, 2, 4},   // ceil(2s * 4 ahead / 2 slots)
		{0.01, 1, 4, 1},  // fast jobs clamp up to a whole second
		{600, 10, 2, 60}, // pathological jobs clamp at a minute
		{1.5, 0, 0, 2},   // a zero-slot limiter prices as one slot
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.avg, c.queued, c.slots); got != c.want {
			t.Errorf("retryAfterSeconds(%v, %d, %d) = %d, want %d",
				c.avg, c.queued, c.slots, got, c.want)
		}
	}
}

// TestServeRetryAfterTracksJobDuration checks the shed path end to end:
// once the server has observed real job durations, a 429's Retry-After
// prices the current backlog with their mean instead of a flat "1".
func TestServeRetryAfterTracksJobDuration(t *testing.T) {
	p := pipeline.New(pipeline.Options{Workers: 2, Seed: 1})
	s := newServer(p, serverOptions{maxInflight: 1, maxQueue: 1})
	h := s.handler()
	s.jobSeconds.Observe(10)
	s.jobSeconds.Observe(10)

	if !s.lim.acquire(context.Background()) {
		t.Fatal("could not take the execution slot")
	}
	queued := make(chan bool)
	go func() { queued <- s.lim.acquire(context.Background()) }()
	for s.lim.queued.Load() == 0 {
	}

	req := httptest.NewRequest("GET", "/api/v1/synthesize?workload=crc32/small", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d: %s", rec.Code, rec.Body.String())
	}
	// One queued request plus the needed slot, priced at 10s over 1 slot.
	if got := rec.Header().Get("Retry-After"); got != "20" {
		t.Errorf("Retry-After = %q, want \"20\"", got)
	}

	s.lim.release()
	if !<-queued {
		t.Fatal("queued waiter was shed")
	}
	s.lim.release()
}
