package main

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/hlc"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	for _, name := range []string{"crc32/small", "dijkstra/small", "fft/small1"} {
		w := workloads.ByName(name)
		cp := hlc.MustCheck(w.Source)
		prog, _ := compiler.Compile(cp, isa.AMD64, compiler.O0)
		prof, err := profile.Collect(prog, w.Setup, w.Name, profile.Options{})
		if err != nil { panic(err) }
		clone, rep, err := core.Synthesize(prof, core.Config{Seed: 20100321})
		if err != nil { panic(err) }
		ccp, _ := hlc.Check(clone)
		cprog, _ := compiler.Compile(ccp, isa.AMD64, compiler.O0)
		var mix [isa.NumClasses]uint64
		var total uint64
		res, err := vm.New(cprog).Run(vm.Config{MaxInstrs: 50000000, Hook: func(ev *vm.Event) {
			total++
			mix[ev.Instr.Class()]++
		}})
		if err != nil { panic(err) }
		fmt.Printf("== %s  coverage=%.3f  R=%d  origDyn=%d cloneDyn=%d\n", name, rep.Coverage, rep.Reduction, prof.TotalDyn, res.DynInstrs)
		fmt.Printf("  orig mix: ")
		for c := 0; c < isa.NumClasses; c++ {
			if prof.Mix[c] > 0 {
				fmt.Printf("%v=%.3f ", isa.Class(c), float64(prof.Mix[c])/float64(prof.TotalDyn))
			}
		}
		fmt.Printf("\n  syn mix:  ")
		for c := 0; c < isa.NumClasses; c++ {
			if mix[c] > 0 {
				fmt.Printf("%v=%.3f ", isa.Class(c), float64(mix[c])/float64(total))
			}
		}
		fmt.Println()
	}
	// coverage per workload over full suite
	for _, w := range workloads.All() {
		cp := hlc.MustCheck(w.Source)
		prog, _ := compiler.Compile(cp, isa.AMD64, compiler.O0)
		prof, _ := profile.Collect(prog, w.Setup, w.Name, profile.Options{})
		_, rep, err := core.Synthesize(prof, core.Config{Seed: 20100321})
		if err != nil { panic(w.Name + ": " + err.Error()) }
		if rep.Coverage < 0.85 {
			fmt.Printf("LOW coverage %-24s %.3f\n", w.Name, rep.Coverage)
		}
	}
}
